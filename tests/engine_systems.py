"""Shared system builders for the engine conformance and golden tests.

Each :class:`EngineCase` describes one small :class:`NeurosynapticSystem`
— corelet-built (pattern match, comparator, weighted sum, accumulator)
or randomized (deterministic and stochastic neurons, multi-core routing
with mixed delays) — together with the tick count and seeds under which
the differential harness exercises it. Builders are pure functions of
their seed so the reference engine, the batch engine, and the checked-in
golden traces all see the identical system.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.corelets.library.accumulator import AccumulatorCorelet
from repro.corelets.library.comparator import ComparatorCorelet
from repro.corelets.library.pattern_match import (
    PatternMatchCorelet,
    gradient_templates,
)
from repro.corelets.library.weighted_sum import NeuronMode, WeightedSumCorelet
from repro.truenorth.simulator import ENGINES
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import NeuronParameters, ResetMode

#: The compiled engines, each differentially tested against "reference".
COMPILED_ENGINES: Tuple[str, ...] = tuple(
    engine for engine in ENGINES if engine != "reference"
)

#: Input spike densities the conformance matrix sweeps: silent, sparse
#: (the event engine's home turf), realistic, dense, and saturated.
DENSITIES: Tuple[float, ...] = (0.0, 0.01, 0.1, 0.5, 1.0)


@dataclass(frozen=True)
class EngineCase:
    """One differential test scenario.

    Attributes:
        name: scenario id (also the golden-trace file stem).
        build: zero-argument builder returning a fresh system with at
            least one input port and one output probe.
        ticks: ticks to simulate.
        sim_seed: simulator seed (drives stochastic thresholds).
        input_seed: seed of the random input rasters.
        density: input spike density in ``[0, 1]``.
    """

    name: str
    build: Callable[[], NeurosynapticSystem]
    ticks: int
    sim_seed: int = 123
    input_seed: int = 7
    density: float = 0.3


def _corelet_system(corelet, name: str) -> NeurosynapticSystem:
    system = NeurosynapticSystem(name)
    built = corelet.build(system)
    system.add_input_port("in", [[ref] for ref in built.inputs])
    system.add_output_probe("out", list(built.outputs))
    return system


def _pattern_match() -> NeurosynapticSystem:
    return _corelet_system(PatternMatchCorelet(gradient_templates()), "pattern-match")


def _comparator() -> NeurosynapticSystem:
    return _corelet_system(ComparatorCorelet(n_pairs=6, margin=2), "comparator")


def _weighted_sum() -> NeurosynapticSystem:
    rng = np.random.default_rng(11)
    weights = rng.integers(-3, 4, size=(12, 8))
    return _corelet_system(
        WeightedSumCorelet(weights, threshold=2, mode=NeuronMode.RECT_RATE),
        "weighted-sum",
    )


def _accumulator() -> NeurosynapticSystem:
    return _corelet_system(
        AccumulatorCorelet(group_sizes=(3, 5, 2, 6), threshold=2), "accumulator"
    )


def random_system(
    seed: int, n_cores: int, stochastic_fraction: float
) -> NeurosynapticSystem:
    """A randomized chain of cores with mixed reset modes and delays.

    A pure function of its arguments (also the generator behind the
    hypothesis conformance properties): equal seeds build identical
    systems, so every engine sees the same corelet.
    """
    system = NeurosynapticSystem(f"random-{seed}")
    rng = np.random.default_rng(seed)
    modes = [ResetMode.RESET, ResetMode.LINEAR, ResetMode.NONE]
    for _ in range(n_cores):
        core = system.new_core()
        core.set_axon_types(rng.integers(0, 4, size=256))
        core.set_crossbar(rng.random((256, 256)) < 0.08)
        for neuron in range(256):
            stochastic = rng.random() < stochastic_fraction
            core.set_neuron(
                neuron,
                NeuronParameters(
                    weights=tuple(int(w) for w in rng.integers(-3, 4, size=4)),
                    threshold=int(rng.integers(1, 8)),
                    leak=int(rng.integers(-2, 3)),
                    reset_mode=modes[int(rng.integers(0, 3))],
                    reset_potential=int(rng.integers(-4, 5)),
                    floor=int(rng.integers(0, 16)),
                    stochastic_threshold_bits=int(rng.integers(1, 4))
                    if stochastic
                    else 0,
                ),
            )
    for src in range(n_cores - 1):
        for neuron in rng.choice(256, size=96, replace=False):
            system.add_route(
                src,
                int(neuron),
                src + 1,
                int(rng.integers(0, 256)),
                delay=int(rng.integers(1, 16)),
            )
    system.add_input_port(
        "in", [[(0, axon)] for axon in range(64)]
    )
    system.add_output_probe(
        "out", [(n_cores - 1, neuron) for neuron in range(48)]
    )
    return system


ENGINE_CASES: Tuple[EngineCase, ...] = (
    EngineCase("pattern_match", _pattern_match, ticks=48),
    EngineCase("comparator", _comparator, ticks=40),
    EngineCase("weighted_sum", _weighted_sum, ticks=48),
    EngineCase("accumulator", _accumulator, ticks=40),
    EngineCase(
        "random_deterministic",
        lambda: random_system(21, n_cores=2, stochastic_fraction=0.0),
        ticks=36,
    ),
    EngineCase(
        "random_stochastic",
        lambda: random_system(22, n_cores=3, stochastic_fraction=0.25),
        ticks=36,
    ),
    EngineCase(
        "single_core_stochastic",
        lambda: random_system(23, n_cores=1, stochastic_fraction=1.0),
        ticks=32,
    ),
)

CASES_BY_NAME: Dict[str, EngineCase] = {case.name: case for case in ENGINE_CASES}


def shared_inputs(
    system: NeurosynapticSystem, ticks: int, seed: int, density: float
) -> Dict[str, np.ndarray]:
    """Random 2-D ``(ticks, width)`` rasters for every input port."""
    rng = np.random.default_rng(seed)
    return {
        name: rng.random((ticks, port.width)) < density
        for name, port in system.input_ports.items()
    }


def batched_inputs(
    system: NeurosynapticSystem,
    ticks: int,
    batch: int,
    seed: int,
    density: float,
) -> Dict[str, np.ndarray]:
    """Random per-lane 3-D ``(batch, ticks, width)`` rasters."""
    rng = np.random.default_rng(seed)
    return {
        name: rng.random((batch, ticks, port.width)) < density
        for name, port in system.input_ports.items()
    }


__all__ = [
    "CASES_BY_NAME",
    "COMPILED_ENGINES",
    "DENSITIES",
    "ENGINE_CASES",
    "EngineCase",
    "batched_inputs",
    "random_system",
    "shared_inputs",
]
