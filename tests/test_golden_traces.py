"""Replay the checked-in golden spike traces through every engine.

The differential conformance suite proves the engines agree with *each
other*; these fixtures pin them to rasters recorded at a known-good
revision, so a semantic regression is caught even if all engines drift
together. The generator (``tests/fixtures/golden/generate.py``) emits
from a single source of truth — the reference engine — and refuses to
write a fixture any registered engine fails to reproduce; a test here
asserts regeneration is byte-idempotent against the committed files.
Regenerate intentionally with
``PYTHONPATH=src:. python tests/fixtures/golden/generate.py``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.truenorth.simulator import ENGINES, Simulator

from tests.engine_systems import CASES_BY_NAME, ENGINE_CASES, shared_inputs
from tests.fixtures.golden.generate import case_payload, render

GOLDEN_DIR = Path(__file__).resolve().parent / "fixtures" / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.json"))


def _load(path):
    return json.loads(path.read_text())


def _golden_rasters(payload):
    rasters = {}
    for name, probe in payload["probes"].items():
        raster = np.zeros((payload["ticks"], probe["width"]), dtype=bool)
        for tick, line in probe["spikes"]:
            raster[tick, line] = True
        rasters[name] = raster
    return rasters


def test_every_case_has_a_golden_trace():
    assert {path.stem for path in GOLDEN_FILES} == set(CASES_BY_NAME)


def test_goldens_were_verified_against_every_registered_engine():
    """A new engine forces regeneration: stale fixtures fail loudly."""
    for path in GOLDEN_FILES:
        assert _load(path)["verified_engines"] == list(ENGINES), (
            f"{path.name} predates an engine registration; regenerate"
        )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[path.stem for path in GOLDEN_FILES]
)
def test_engine_reproduces_golden_trace(path, engine):
    payload = _load(path)
    case = CASES_BY_NAME[payload["case"]]
    assert case.ticks == payload["ticks"], "fixture is stale; regenerate"
    assert (case.sim_seed, case.input_seed, case.density) == (
        payload["sim_seed"],
        payload["input_seed"],
        payload["density"],
    ), "fixture is stale; regenerate"

    simulator = Simulator(case.build(), rng=case.sim_seed, engine=engine)
    inputs = shared_inputs(
        simulator.system, case.ticks, case.input_seed, case.density
    )
    result = simulator.run(case.ticks, inputs)

    expected = _golden_rasters(payload)
    assert result.probe_spikes.keys() == expected.keys()
    for name, raster in expected.items():
        np.testing.assert_array_equal(result.probe_spikes[name], raster)
    assert result.total_spikes == payload["total_spikes"]


@pytest.mark.parametrize(
    "case", ENGINE_CASES, ids=[case.name for case in ENGINE_CASES]
)
def test_regeneration_is_idempotent(case):
    """Committed fixture bytes == a fresh run of the generator."""
    committed = (GOLDEN_DIR / f"{case.name}.json").read_text()
    assert render(case_payload(case)) == committed, (
        f"{case.name}.json is stale; rerun tests/fixtures/golden/generate.py "
        "and review the diff as a semantic change"
    )
