"""Replay the checked-in golden spike traces through both engines.

The differential conformance suite proves the two engines agree with
*each other*; these fixtures pin them to rasters recorded at a known-good
revision, so a semantic regression is caught even if both engines drift
together. Regenerate intentionally with
``PYTHONPATH=src:. python tests/fixtures/golden/generate.py``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.truenorth.simulator import Simulator

from tests.engine_systems import CASES_BY_NAME, shared_inputs

GOLDEN_DIR = Path(__file__).resolve().parent / "fixtures" / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.json"))


def _load(path):
    return json.loads(path.read_text())


def _golden_rasters(payload):
    rasters = {}
    for name, probe in payload["probes"].items():
        raster = np.zeros((payload["ticks"], probe["width"]), dtype=bool)
        for tick, line in probe["spikes"]:
            raster[tick, line] = True
        rasters[name] = raster
    return rasters


def test_every_case_has_a_golden_trace():
    assert {path.stem for path in GOLDEN_FILES} == set(CASES_BY_NAME)


@pytest.mark.parametrize("engine", ["reference", "batch"])
@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[path.stem for path in GOLDEN_FILES]
)
def test_engine_reproduces_golden_trace(path, engine):
    payload = _load(path)
    case = CASES_BY_NAME[payload["case"]]
    assert case.ticks == payload["ticks"], "fixture is stale; regenerate"
    assert (case.sim_seed, case.input_seed, case.density) == (
        payload["sim_seed"],
        payload["input_seed"],
        payload["density"],
    ), "fixture is stale; regenerate"

    simulator = Simulator(case.build(), rng=case.sim_seed, engine=engine)
    inputs = shared_inputs(
        simulator.system, case.ticks, case.input_seed, case.density
    )
    result = simulator.run(case.ticks, inputs)

    expected = _golden_rasters(payload)
    assert result.probe_spikes.keys() == expected.keys()
    for name, raster in expected.items():
        np.testing.assert_array_equal(result.probe_spikes[name], raster)
    assert result.total_spikes == payload["total_spikes"]
