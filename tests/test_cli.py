"""Tests for the python -m repro command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2 reproduction" in out
        assert "6.72x" in out or "6.7" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "dominant bin = 0" in out

    def test_validate(self, capsys):
        assert main(["validate", "--cells", "3"]) == 0
        out = capsys.readouterr().out
        assert "correlation" in out

    def test_validate_batch_engine(self, capsys):
        assert main(["validate", "--cells", "3", "--engine", "batch"]) == 0
        out = capsys.readouterr().out
        assert "correlation" in out
        assert "batch" in out

    def test_serve_smoke(self, capsys):
        assert main(["serve", "--requests", "24", "--concurrency", "4",
                     "--chunk-size", "2"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["load"]["requests"] == 24
        assert payload["load"]["completed"] == 24
        assert payload["stats"]["counters"]["submitted"] == 24

    def test_video_smoke(self, capsys, tmp_path):
        output = tmp_path / "video.json"
        assert main([
            "video", "--small", "--frames", "2", "--motion", "static",
            "--engine", "event", "--output", str(output),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 160x224 frames" in out
        assert "cache hit rate" in out
        payload = json.loads(output.read_text())
        assert payload["engine"] == "event"
        assert payload["motion"] == "static"
        assert len(payload["per_frame"]) == 2
        assert payload["degraded_frames"] == 0

    def test_video_bad_shape_rejected(self, capsys):
        assert main(["video", "--video-shape", "huge"]) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig7"])

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
