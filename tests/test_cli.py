"""Tests for the python -m repro command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2 reproduction" in out
        assert "6.72x" in out or "6.7" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "dominant bin = 0" in out

    def test_validate(self, capsys):
        assert main(["validate", "--cells", "3"]) == 0
        out = capsys.readouterr().out
        assert "correlation" in out

    def test_validate_batch_engine(self, capsys):
        assert main(["validate", "--cells", "3", "--engine", "batch"]) == 0
        out = capsys.readouterr().out
        assert "correlation" in out
        assert "batch" in out

    def test_serve_smoke(self, capsys):
        assert main(["serve", "--requests", "24", "--concurrency", "4",
                     "--chunk-size", "2"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["load"]["requests"] == 24
        assert payload["load"]["completed"] == 24
        assert payload["stats"]["counters"]["submitted"] == 24

    def test_video_smoke(self, capsys, tmp_path):
        output = tmp_path / "video.json"
        assert main([
            "video", "--small", "--frames", "2", "--motion", "static",
            "--engine", "event", "--output", str(output),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 160x224 frames" in out
        assert "cache hit rate" in out
        payload = json.loads(output.read_text())
        assert payload["engine"] == "event"
        assert payload["motion"] == "static"
        assert len(payload["per_frame"]) == 2
        assert payload["degraded_frames"] == 0

    def test_video_bad_shape_rejected(self, capsys):
        assert main(["video", "--video-shape", "huge"]) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig7"])

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestTraceCommand:
    def test_trace_export_writes_valid_chrome_trace(self, capsys, tmp_path):
        from repro.obs import flight_recorder, trace_log
        from repro.obs.traces import validate_chrome_trace

        trace_log().clear()
        flight_recorder().clear()
        export = tmp_path / "trace.json"
        assert main([
            "trace", "--export", str(export),
            "serve", "--requests", "12", "--concurrency", "2",
            "--chunk-size", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "span timings" in out
        assert f"wrote" in out and str(export) in out
        document = json.loads(export.read_text())
        validate_chrome_trace(document)
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_trace_export_needs_a_value(self, capsys):
        assert main(["trace", "--export"]) == 2

    def test_trace_without_command_is_usage_error(self, capsys):
        assert main(["trace"]) == 2


class TestSloCommand:
    def test_slo_evaluates_a_real_serve_run(self, capsys, tmp_path):
        output = tmp_path / "slo.json"
        assert main([
            "slo", "--output", str(output),
            "serve", "--requests", "16", "--concurrency", "2",
            "--chunk-size", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO verdicts" in out
        assert "serve_latency_fast" in out
        assert "serve_energy_per_request" in out
        from repro.obs.slo import validate_report

        report = json.loads(output.read_text())
        validate_report(report)
        signals = {o["objective"]["signal"] for o in report["objectives"]}
        assert signals == {"latency", "energy"}
        assert all(o["total"] > 0 for o in report["objectives"])

    def test_slo_publishes_burn_rate_series(self, capsys):
        from repro.obs import get_registry

        assert main([
            "slo", "serve", "--requests", "8", "--concurrency", "2",
            "--chunk-size", "2",
        ]) == 0
        exposition = get_registry().render_prometheus()
        assert 'slo_burn_rate{slo="serve_latency_fast"}' in exposition
        assert 'slo_requests_total{slo="serve_energy_per_request"}' in (
            exposition
        )

    def test_slo_rewrites_the_metrics_exposition_file(self, capsys, tmp_path):
        """A ``--metrics-output`` file written by the wrapped command is
        rewritten after publication, so the scraped exposition (what the
        CI slo-smoke job reads) carries the burn-rate series."""
        prom = tmp_path / "metrics.prom"
        assert main([
            "slo", "serve", "--requests", "8", "--concurrency", "2",
            "--chunk-size", "2", "--metrics-output", str(prom),
        ]) == 0
        exposition = prom.read_text()
        assert 'slo_burn_rate{slo="serve_latency_fast"}' in exposition
        assert "serve_latency_seconds_count" in exposition

    def test_slo_custom_objectives_and_check_gate(self, capsys, tmp_path):
        objectives = tmp_path / "objectives.json"
        objectives.write_text(json.dumps([
            {
                "name": "impossible",
                "signal": "latency",
                "metric": "serve_latency_seconds",
                "threshold": 1e-07,
                "target": 0.999,
            }
        ]))
        code = main([
            "slo", "--objectives", str(objectives), "--check",
            "serve", "--requests", "8", "--concurrency", "2",
            "--chunk-size", "2",
        ])
        assert code == 1
        out = capsys.readouterr()
        assert "impossible" in out.out
        assert "objective violated" in out.err

    def test_slo_without_command_is_usage_error(self, capsys):
        assert main(["slo"]) == 2

    def test_slo_bad_objectives_file_is_usage_error(self, capsys, tmp_path):
        missing = tmp_path / "none.json"
        assert main(["slo", "--objectives", str(missing), "serve"]) == 2
