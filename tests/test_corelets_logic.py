"""Tests for comparator, gated logic, accumulator, pooling, pattern match."""

import numpy as np
import pytest

from repro.coding import RateEncoder
from repro.corelets import compile_corelet
from repro.corelets.library import (
    AccumulatorCorelet,
    ComparatorCorelet,
    GatedLogicCorelet,
    MaxPoolCorelet,
    PatternMatchCorelet,
)
from repro.corelets.library.pattern_match import gradient_templates
from repro.truenorth import Simulator


class TestComparator:
    def _raster(self, a, b, window=16, extra=8):
        raster = np.zeros((window + extra, 2), dtype=bool)
        raster[:window] = RateEncoder(window).encode(np.array([a, b]))
        return raster

    def test_greater_fires(self):
        program = compile_corelet(ComparatorCorelet(1))
        result = Simulator(program.system, rng=0).run(
            24, {"in": self._raster(0.75, 0.25)}
        )
        assert result.probe_spikes["out"][-3:, 0].all()

    def test_less_silent(self):
        program = compile_corelet(ComparatorCorelet(1))
        result = Simulator(program.system, rng=0).run(
            24, {"in": self._raster(0.25, 0.75)}
        )
        assert not result.probe_spikes["out"][-3:, 0].any()

    def test_equal_silent_with_strict_margin(self):
        program = compile_corelet(ComparatorCorelet(1))
        result = Simulator(program.system, rng=0).run(
            24, {"in": self._raster(0.5, 0.5)}
        )
        assert not result.probe_spikes["out"][-3:, 0].any()

    def test_margin(self):
        program = compile_corelet(ComparatorCorelet(1, margin=5))
        result = Simulator(program.system, rng=0).run(
            24, {"in": self._raster(0.625, 0.5)}  # diff = 2 < 5
        )
        assert not result.probe_spikes["out"][-3:, 0].any()

    def test_multiple_pairs_independent(self):
        program = compile_corelet(ComparatorCorelet(2))
        window = 16
        raster = np.zeros((24, 4), dtype=bool)
        raster[:window] = RateEncoder(window).encode(np.array([0.8, 0.2, 0.2, 0.8]))
        result = Simulator(program.system, rng=0).run(24, {"in": raster})
        tail = result.probe_spikes["out"][-3:]
        assert tail[:, 0].all() and not tail[:, 1].any()

    def test_validation(self):
        with pytest.raises(ValueError):
            ComparatorCorelet(0)
        with pytest.raises(ValueError):
            ComparatorCorelet(1, margin=0)


class TestGatedLogic:
    def _run(self, weights, threshold, one_shot, data_raster, gate_ticks, ticks):
        corelet = GatedLogicCorelet(weights, threshold=threshold, one_shot=one_shot)
        program = compile_corelet(corelet)
        n_data = weights.shape[0]
        raster = np.zeros((ticks, n_data + 1), dtype=bool)
        raster[: data_raster.shape[0], 1:] = data_raster
        for tick in gate_ticks:
            raster[tick, 0] = True
        result = Simulator(program.system, rng=0).run(ticks, {"in": raster})
        return result

    def test_gate_required(self):
        weights = np.array([[1]])
        data = np.ones((10, 1), dtype=bool)
        result = self._run(weights, 1, False, data, gate_ticks=[], ticks=12)
        assert result.spike_counts("out")[0] == 0

    def test_fires_when_gated_and_true(self):
        weights = np.array([[1]])
        data = np.ones((10, 1), dtype=bool)
        result = self._run(weights, 1, False, data, gate_ticks=[5], ticks=12)
        assert result.spike_counts("out")[0] == 1

    def test_one_shot_single_spike(self):
        weights = np.array([[1]])
        data = np.ones((10, 1), dtype=bool)
        result = self._run(weights, 1, True, data, gate_ticks=[4, 5, 6], ticks=14)
        assert result.spike_counts("out")[0] == 1

    def test_and_not_semantics(self):
        # out = a AND NOT b, evaluated at the gate tick.
        weights = np.array([[1], [-1]])
        data = np.zeros((10, 2), dtype=bool)
        data[:, 0] = True  # a persistent, b silent
        result = self._run(weights, 1, False, data, gate_ticks=[5], ticks=12)
        assert result.spike_counts("out")[0] == 1
        data[:, 1] = True  # now b blocks
        result = self._run(weights, 1, False, data, gate_ticks=[5], ticks=12)
        assert result.spike_counts("out")[0] == 0

    def test_transients_do_not_accumulate(self):
        # Data spikes before the gate must not charge the evaluator.
        weights = np.array([[2]])
        data = np.zeros((10, 1), dtype=bool)
        data[:5, 0] = True  # transients while gate silent
        result = self._run(weights, 2, False, data, gate_ticks=[8], ticks=12)
        assert result.spike_counts("out")[0] == 0


class TestAccumulator:
    def test_group_sums(self):
        corelet = AccumulatorCorelet([2, 1])
        program = compile_corelet(corelet)
        window = 8
        raster = np.zeros((window + 16, 3), dtype=bool)
        raster[:window] = RateEncoder(window).encode(np.array([0.5, 0.5, 1.0]))
        result = Simulator(program.system, rng=0).run(window + 16, {"in": raster})
        assert list(result.spike_counts("out")) == [8, 8]

    def test_burst_drains(self):
        # All group inputs spike the same tick; the count drains 1/tick.
        corelet = AccumulatorCorelet([4])
        program = compile_corelet(corelet)
        raster = np.zeros((10, 4), dtype=bool)
        raster[0, :] = True
        result = Simulator(program.system, rng=0).run(10, {"in": raster})
        assert result.spike_counts("out")[0] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            AccumulatorCorelet([])
        with pytest.raises(ValueError):
            AccumulatorCorelet([2, 0])


class TestMaxPool:
    def test_or_semantics(self):
        corelet = MaxPoolCorelet([2])
        program = compile_corelet(corelet)
        raster = np.zeros((6, 2), dtype=bool)
        raster[0, 0] = True
        raster[0, 1] = True  # same tick: one output spike, not two
        raster[2, 1] = True
        result = Simulator(program.system, rng=0).run(6, {"in": raster})
        assert result.spike_counts("out")[0] == 2

    def test_approximates_max_of_rates(self):
        corelet = MaxPoolCorelet([2])
        program = compile_corelet(corelet)
        window = 32
        raster = np.zeros((window + 4, 2), dtype=bool)
        raster[:window] = RateEncoder(window).encode(np.array([0.5, 0.125]))
        result = Simulator(program.system, rng=0).run(window + 4, {"in": raster})
        count = result.spike_counts("out")[0]
        assert 16 <= count <= 20  # >= max, <= sum


class TestPatternMatch:
    def test_gradient_templates_shape(self):
        templates = gradient_templates()
        assert templates.shape == (9, 4)
        # Ix = P5 - P3 (paper Figure 2).
        assert templates[5, 0] == 1 and templates[3, 0] == -1

    def test_matching_pattern_scores_high(self):
        templates = gradient_templates()
        corelet = PatternMatchCorelet(templates)
        program = compile_corelet(corelet)
        window = 16
        values = np.zeros(9)
        values[5] = 1.0  # bright right neighbour: strong +Ix
        raster = np.zeros((window + 8, 9), dtype=bool)
        raster[:window] = RateEncoder(window).encode(values)
        result = Simulator(program.system, rng=0).run(window + 8, {"in": raster})
        counts = result.spike_counts("out")
        assert counts[0] == window  # Ix
        assert counts[1] == 0  # -Ix rectified away
