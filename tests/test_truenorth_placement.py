"""Tests for core-to-chip placement."""

import pytest

from repro.truenorth.placement import (
    best_placement,
    grouped_placement,
    sequential_placement,
)
from repro.truenorth.system import NeurosynapticSystem


def _chain_system(n_cores: int) -> NeurosynapticSystem:
    system = NeurosynapticSystem()
    for _ in range(n_cores):
        system.new_core()
    for index in range(n_cores - 1):
        system.add_route(index, 0, index + 1, 0)
    return system


class TestSequential:
    def test_single_chip(self):
        report = sequential_placement(_chain_system(5), cores_per_chip=8)
        assert report.chips == 1
        assert report.inter_chip_routes == 0

    def test_split_counts_crossings(self):
        report = sequential_placement(_chain_system(6), cores_per_chip=3)
        assert report.chips == 2
        # Chain 0-1-2 | 3-4-5: exactly one crossing route (2 -> 3).
        assert report.inter_chip_routes == 1
        assert report.total_routes == 5

    def test_fraction(self):
        report = sequential_placement(_chain_system(6), cores_per_chip=3)
        assert report.inter_chip_fraction == pytest.approx(0.2)

    def test_empty_system(self):
        report = sequential_placement(NeurosynapticSystem())
        assert report.chips == 0
        assert report.inter_chip_fraction == 0.0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            sequential_placement(_chain_system(2), cores_per_chip=0)


class TestGrouped:
    def test_group_kept_together(self):
        system = _chain_system(6)
        report = grouped_placement(
            system, groups=[(0, 1, 2), (3, 4, 5)], cores_per_chip=3
        )
        assert report.chips == 2
        assert report.inter_chip_routes == 1

    def test_grouping_beats_bad_interleaving(self):
        # Routes 0->3, 1->4, 2->5: sequential split at 3 crosses all.
        system = NeurosynapticSystem()
        for _ in range(6):
            system.new_core()
        for index in range(3):
            system.add_route(index, 0, index + 3, 0)
        sequential = sequential_placement(system, cores_per_chip=3)
        grouped = grouped_placement(
            system, groups=[(0, 3), (1, 4), (2, 5)], cores_per_chip=3
        )
        assert sequential.inter_chip_routes == 3
        assert grouped.inter_chip_routes < 3

    def test_uncovered_cores_become_singletons(self):
        system = _chain_system(4)
        report = grouped_placement(system, groups=[(0, 1)], cores_per_chip=2)
        assert set(report.assignment) == {0, 1, 2, 3}

    def test_oversized_group_rejected(self):
        with pytest.raises(ValueError):
            grouped_placement(_chain_system(4), groups=[(0, 1, 2)], cores_per_chip=2)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            grouped_placement(_chain_system(4), groups=[(0, 1), (1, 2)])


class TestBest:
    def test_picks_fewer_crossings(self):
        system = NeurosynapticSystem()
        for _ in range(6):
            system.new_core()
        for index in range(3):
            system.add_route(index, 0, index + 3, 0)
        report = best_placement(
            system, groups=[(0, 3), (1, 4), (2, 5)], cores_per_chip=2
        )
        assert report.inter_chip_routes == 0

    def test_defaults_to_sequential(self):
        report = best_placement(_chain_system(3))
        assert report.chips == 1
