"""The declarative SLO engine (``repro.obs.slo``).

Objective validation, conservative bucket-based compliance, burn-rate
math over latency *and* joules-per-request signals, registry
publication of the verdicts, and the schema-validated report the CI
``slo-smoke`` job consumes.
"""

import json
import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    REPORT_SCHEMA,
    SLObjective,
    default_objectives,
    evaluate_objectives,
    format_report,
    load_objectives,
    publish_results,
    report_json,
    validate_report,
)

LATENCY_SLO = SLObjective(
    name="lat",
    signal="latency",
    metric="serve_latency_seconds",
    threshold=0.1,
    target=0.9,
)
ENERGY_SLO = SLObjective(
    name="joules",
    signal="energy",
    metric="serve_request_energy_nj",
    threshold=1e-6,  # 1 uJ = 1000 nJ
    target=0.5,
)


def _latency_registry(values, buckets=(0.01, 0.1, 1.0)):
    registry = MetricsRegistry()
    hist = registry.histogram("serve_latency_seconds", buckets=buckets)
    for value in values:
        hist.observe(value)
    return registry


class TestObjectiveValidation:
    def test_rejects_unknown_signal(self):
        with pytest.raises(ValueError, match="signal"):
            SLObjective("x", "throughput", "m", 1.0, 0.9)

    def test_rejects_degenerate_target(self):
        for target in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError, match="target"):
                SLObjective("x", "latency", "m", 1.0, target)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SLObjective("x", "latency", "m", 0.0, 0.9)

    def test_error_budget(self):
        assert LATENCY_SLO.error_budget == pytest.approx(0.1)

    def test_defaults_cover_latency_and_energy(self):
        signals = {o.signal for o in default_objectives()}
        assert signals == {"latency", "energy"}


class TestEvaluation:
    def test_compliance_from_cumulative_buckets(self):
        registry = _latency_registry([0.005] * 8 + [0.5] * 2)
        (result,) = evaluate_objectives(registry, [LATENCY_SLO])
        assert result.total == 10 and result.good == 8
        assert result.compliance == pytest.approx(0.8)
        assert result.effective_bound == pytest.approx(0.1)
        assert not result.met

    def test_burn_rate_is_bad_fraction_over_budget(self):
        registry = _latency_registry([0.005] * 8 + [0.5] * 2)
        (result,) = evaluate_objectives(registry, [LATENCY_SLO])
        # 20% bad over a 10% budget = burning 2x
        assert result.burn_rate == pytest.approx(2.0)
        assert result.budget_remaining == pytest.approx(-1.0)

    def test_met_when_within_target(self):
        registry = _latency_registry([0.005] * 99 + [0.5])
        (result,) = evaluate_objectives(registry, [LATENCY_SLO])
        assert result.met and result.burn_rate == pytest.approx(0.1)

    def test_idle_metric_violates_nothing(self):
        (result,) = evaluate_objectives(MetricsRegistry(), [LATENCY_SLO])
        assert result.total == 0
        assert result.compliance == 1.0
        assert result.burn_rate == 0.0
        assert result.met
        assert math.isnan(result.effective_bound)

    def test_energy_threshold_converts_joules_to_nanojoules(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "serve_request_energy_nj", buckets=(100.0, 1000.0, 1e6)
        )
        for value in (50.0, 900.0, 2e5):  # nJ observations
            hist.observe(value)
        (result,) = evaluate_objectives(registry, [ENERGY_SLO])
        # 1 uJ threshold -> the 1000 nJ bucket bound; 2 of 3 under it
        assert result.effective_bound == pytest.approx(1000.0)
        assert result.good == 2 and result.total == 3

    def test_threshold_below_every_bound_counts_nothing_good(self):
        registry = _latency_registry([0.005], buckets=(1.0, 2.0))
        (result,) = evaluate_objectives(registry, [LATENCY_SLO])
        assert result.good == 0 and result.total == 1
        assert math.isnan(result.effective_bound)

    def test_labeled_series_summed_when_unlabeled_absent(self):
        registry = MetricsRegistry()
        for shard in ("0", "1"):
            registry.histogram(
                "serve_latency_seconds",
                buckets=(0.01, 0.1, 1.0),
                labels={"shard": shard},
            ).observe(0.005)
        (result,) = evaluate_objectives(registry, [LATENCY_SLO])
        assert result.total == 2 and result.good == 2


class TestPublication:
    def test_burn_rate_series_land_in_the_registry(self):
        registry = _latency_registry([0.005] * 8 + [0.5] * 2)
        results = evaluate_objectives(registry, [LATENCY_SLO])
        publish_results(results, registry)
        labels = {"slo": "lat"}
        assert registry.get("slo_requests_total", labels=labels).value == 10
        assert registry.get("slo_bad_requests_total", labels=labels).value == 2
        assert registry.get(
            "slo_burn_rate", labels=labels
        ).value == pytest.approx(2.0)


class TestReport:
    def _results(self):
        registry = _latency_registry([0.005] * 8 + [0.5] * 2)
        return evaluate_objectives(registry, [LATENCY_SLO, ENERGY_SLO])

    def test_report_round_trips_json_and_validates(self):
        report = report_json(self._results())
        validate_report(json.loads(json.dumps(report)))
        assert report["schema"] == REPORT_SCHEMA
        assert report["met_all"] is False
        assert len(report["objectives"]) == 2

    def test_validation_rejects_drifted_documents(self):
        report = report_json(self._results())
        for mutate in (
            lambda d: d.pop("schema"),
            lambda d: d.update(schema="other/v9"),
            lambda d: d["objectives"][0].pop("burn_rate"),
            lambda d: d["objectives"][0].update(good=999),
            lambda d: d["objectives"][0].update(compliance=1.5),
        ):
            broken = json.loads(json.dumps(report))
            mutate(broken)
            with pytest.raises(ValueError):
                validate_report(broken)

    def test_format_report_names_every_objective(self):
        text = format_report(self._results())
        assert "lat" in text and "joules" in text
        assert "VIOLATED" in text

    def test_load_objectives(self, tmp_path):
        path = tmp_path / "objectives.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "name": "p99_fast",
                        "signal": "latency",
                        "metric": "serve_latency_seconds",
                        "threshold": 0.5,
                        "target": 0.99,
                    }
                ]
            )
        )
        (objective,) = load_objectives(str(path))
        assert objective.name == "p99_fast"
        assert objective.threshold == 0.5

    def test_load_objectives_rejects_malformed_files(self, tmp_path):
        path = tmp_path / "objectives.json"
        for payload in ("{}", "[]", '[{"name": "x"}]', '["nope"]'):
            path.write_text(payload)
            with pytest.raises(ValueError):
                load_objectives(str(path))
