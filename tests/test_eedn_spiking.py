"""Tests for spiking-mode evaluation."""

import numpy as np
import pytest

from repro.eedn import (
    EednNetwork,
    SpikingEvaluator,
    ThresholdActivation,
    TrinaryConv2D,
    TrinaryDense,
)
from repro.errors import ConfigurationError


def _net(seed=0):
    net = EednNetwork(
        [
            TrinaryDense(6, 32, rng=seed),
            ThresholdActivation(0.0),
            TrinaryDense(32, 3, rng=seed + 1),
        ]
    )
    net.layers[0].bias[:] = np.linspace(-0.4, 0.4, 32)
    net.layers[2].bias[:] = np.array([0.2, -0.3, 0.0])
    return net


class TestConstruction:
    def test_rejects_conv(self):
        with pytest.raises(ConfigurationError):
            SpikingEvaluator(EednNetwork([TrinaryConv2D(1, 1, 2, rng=0)]), ticks=4)

    def test_rejects_bad_ticks(self):
        with pytest.raises(ValueError):
            SpikingEvaluator(_net(), ticks=0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            SpikingEvaluator(_net(), ticks=4, output_mode="soft")

    def test_widths(self):
        evaluator = SpikingEvaluator(_net(), ticks=4)
        assert evaluator.n_in == 6
        assert evaluator.n_out == 3


class TestEvaluation:
    def test_counts_bounded_by_ticks(self):
        evaluator = SpikingEvaluator(_net(), ticks=8, rng=0)
        result = evaluator.evaluate(np.random.default_rng(1).random((4, 6)))
        assert result.counts.min() >= 0
        assert result.counts.max() <= 8
        assert result.rates.max() <= 1.0

    def test_deterministic_inputs_hard_mode(self):
        """With inputs 0/1 and hard outputs, every tick is identical."""
        evaluator = SpikingEvaluator(_net(), ticks=16, rng=2, output_mode="hard")
        values = np.array([[1.0, 0.0, 1.0, 1.0, 0.0, 0.0]])
        result = evaluator.evaluate(values)
        assert set(np.unique(result.counts)).issubset({0, 16})

    def test_spiking_tracks_analog_ordering(self):
        """Stochastic-threshold spike counts track the analog logit
        ordering (hard outputs saturate to 0/T and lose it)."""
        net = _net()
        evaluator = SpikingEvaluator(net, ticks=64, rng=3, output_mode="stochastic")
        rng = np.random.default_rng(4)
        values = (rng.random((30, 6)) > 0.5).astype(float)
        logits = net.forward(values)
        counts = evaluator.evaluate(values).counts
        correlation = np.corrcoef(logits.ravel(), counts.ravel())[0, 1]
        assert correlation > 0.7

    def test_stochastic_output_mode_graded(self):
        """Stochastic thresholds turn saturated hard outputs into graded
        rates."""
        net = _net()
        hard = SpikingEvaluator(net, ticks=64, rng=5, output_mode="hard")
        stochastic = SpikingEvaluator(net, ticks=64, rng=5, output_mode="stochastic")
        values = (np.random.default_rng(6).random((10, 6)) > 0.5).astype(float)
        hard_levels = len(np.unique(hard.evaluate(values).counts))
        stochastic_levels = len(np.unique(stochastic.evaluate(values).counts))
        assert stochastic_levels > hard_levels

    def test_exact_bias_cutoff(self):
        """Float biases deploy exactly: z + b >= 0 <=> z >= ceil(-b)."""
        net = EednNetwork([TrinaryDense(2, 1, rng=0)])
        net.layers[0].weights[:] = np.array([[1.0], [1.0]])
        net.layers[0].bias[:] = np.array([-1.5])  # fire iff z >= 2
        evaluator = SpikingEvaluator(net, ticks=1, rng=0, output_mode="hard")
        assert evaluator.evaluate(np.array([[1.0, 1.0]])).counts[0, 0] == 1
        assert evaluator.evaluate(np.array([[1.0, 0.0]])).counts[0, 0] == 0

    def test_input_width_checked(self):
        evaluator = SpikingEvaluator(_net(), ticks=4)
        with pytest.raises(ValueError):
            evaluator.evaluate(np.ones((1, 7)))

    def test_rasters_shape(self):
        evaluator = SpikingEvaluator(_net(), ticks=6, rng=0)
        rasters = evaluator.spike_rasters(np.ones((2, 6)) * 0.5)
        assert rasters.shape == (6, 2, 3)

    def test_seeded_reproducibility(self):
        values = np.random.default_rng(8).random((3, 6))
        a = SpikingEvaluator(_net(), ticks=16, rng=7).evaluate(values).counts
        b = SpikingEvaluator(_net(), ticks=16, rng=7).evaluate(values).counts
        assert np.array_equal(a, b)
