"""Tests anchoring the power model to the paper's Table 2 numbers."""

import pytest

from repro.power import (
    FPGA_LOGIC_WATTS,
    FPGA_SYSTEM_WATTS,
    fpga_estimate,
    generate_table2,
    module_throughput_cells_per_second,
    modules_required,
    napprox_estimate,
    parrot_estimate,
    power_ratio_parrot_vs_napprox,
    system_cell_rate,
)


class TestThroughput:
    def test_paper_module_rates(self):
        # Paper: 15 cells/s at 64-spike, 31 at 32-spike, 1000 at 1-spike.
        assert module_throughput_cells_per_second(64) == 15
        assert module_throughput_cells_per_second(32) == 31
        assert module_throughput_cells_per_second(4) == 250
        assert module_throughput_cells_per_second(1) == 1000

    def test_system_rate(self):
        assert system_cell_rate(26.0) == pytest.approx(1.5e6, rel=0.01)

    def test_modules_required_positive(self):
        assert modules_required(64) > 90_000

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            module_throughput_cells_per_second(0)
        with pytest.raises(ValueError):
            modules_required(2000)  # slower than one cell per second


class TestTable2Anchors:
    def test_napprox_power_near_40w(self):
        estimate = napprox_estimate()
        assert estimate.power_watts == pytest.approx(40.0, rel=0.08)

    def test_napprox_chips_near_650(self):
        # Paper: "nearly 650 TrueNorth chips".
        assert 600 <= napprox_estimate().chips <= 680

    def test_parrot_32_spike_near_6_15w(self):
        assert parrot_estimate(32).power_watts == pytest.approx(6.15, rel=0.02)

    def test_parrot_4_spike_768mw(self):
        assert parrot_estimate(4).power_watts == pytest.approx(0.768, rel=0.01)

    def test_parrot_1_spike_192mw(self):
        assert parrot_estimate(1).power_watts == pytest.approx(0.192, rel=0.01)

    def test_power_ratios_span_paper_range(self):
        # Paper: Parrot uses 6.5x-208x less power than NApprox.
        assert power_ratio_parrot_vs_napprox(32) == pytest.approx(6.5, rel=0.1)
        assert power_ratio_parrot_vs_napprox(1) == pytest.approx(208, rel=0.1)

    def test_fpga_constants(self):
        assert fpga_estimate(system=False).power_watts == FPGA_LOGIC_WATTS == 1.12
        assert fpga_estimate(system=True).power_watts == FPGA_SYSTEM_WATTS == 8.6

    def test_table_has_six_rows(self):
        rows = generate_table2()
        assert len(rows) == 6
        assert rows[0].approach.startswith("High-precision HoG")
        assert rows[2].signal_resolution == "64-spike (6-bit)"

    def test_measured_corelet_cores_lower_power(self):
        """Using this repo's 22-core module instead of the paper's 26
        proportionally reduces the NApprox estimate."""
        paper = napprox_estimate(cores_per_module=26)
        measured = napprox_estimate(cores_per_module=22)
        assert measured.power_watts == pytest.approx(
            paper.power_watts * 22 / 26, rel=1e-6
        )
