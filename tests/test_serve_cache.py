"""Tests for the content-addressed LRU result cache."""

import threading

import numpy as np
import pytest

from repro.serve.cache import LruResultCache, content_key


class TestContentKey:
    def test_equal_inputs_equal_keys(self):
        row = np.random.default_rng(0).random(16)
        assert content_key("m", row) == content_key("m", row.copy())

    def test_model_identity_separates_keys(self):
        row = np.random.default_rng(0).random(16)
        assert content_key("model-a", row) != content_key("model-b", row)

    def test_feature_bytes_separate_keys(self):
        row = np.random.default_rng(0).random(16)
        other = row.copy()
        other[3] += 1e-12  # any bit difference is a different window
        assert content_key("m", row) != content_key("m", other)

    def test_dtype_canonicalised(self):
        row32 = np.arange(4, dtype=np.float32)
        row64 = np.arange(4, dtype=np.float64)
        assert content_key("m", row32) == content_key("m", row64)


class TestLruResultCache:
    def test_miss_then_hit(self):
        cache = LruResultCache(4)
        key = content_key("m", np.zeros(2))
        hit, _ = cache.lookup(key)
        assert not hit
        cache.put(key, 1.5)
        hit, value = cache.lookup(key)
        assert hit and value == 1.5
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_capacity_evicts_least_recent(self):
        cache = LruResultCache(2)
        keys = [content_key("m", np.full(2, i)) for i in range(3)]
        cache.put(keys[0], 0)
        cache.put(keys[1], 1)
        cache.lookup(keys[0])  # refresh 0; 1 becomes LRU
        cache.put(keys[2], 2)
        assert cache.lookup(keys[0])[0]
        assert not cache.lookup(keys[1])[0]
        assert cache.lookup(keys[2])[0]
        assert len(cache) == 2

    def test_put_refreshes_existing_entry(self):
        cache = LruResultCache(2)
        key = content_key("m", np.zeros(2))
        cache.put(key, 1)
        cache.put(key, 2)
        assert len(cache) == 1
        assert cache.lookup(key)[1] == 2

    def test_clear_keeps_counters(self):
        cache = LruResultCache(2)
        key = content_key("m", np.zeros(2))
        cache.put(key, 1)
        cache.lookup(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruResultCache(0)


class TestHitRateThreadSafety:
    def test_hit_rate_consistent_under_concurrent_lookups(self):
        """Regression: ``hit_rate`` used to read ``hits``/``misses``
        without the lock while ``lookup`` mutated them under it, so a
        concurrent reader could see torn hits/misses pairs and report a
        rate above 1.0 or below the running minimum. With the locked
        read, every observed rate must stay within [0, 1] and the final
        rate must match the exact hit/miss tally."""
        cache = LruResultCache(64)
        keys = [content_key("m", np.full(2, float(i))) for i in range(8)]
        for key in keys[:4]:
            cache.put(key, 1.0)  # half the keys will hit
        n_threads, per_thread = 6, 1500
        rates = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                rates.append(cache.hit_rate)

        def worker(seed):
            for i in range(per_thread):
                cache.lookup(keys[(seed + i) % len(keys)])

        reader_thread = threading.Thread(target=reader)
        workers = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(n_threads)
        ]
        reader_thread.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        reader_thread.join()

        assert all(0.0 <= rate <= 1.0 for rate in rates)
        lookups = n_threads * per_thread
        assert cache.hits + cache.misses == lookups
        assert cache.hit_rate == cache.hits / lookups
