"""Tests for grouping, core counting, and dense deployment."""

import numpy as np
import pytest

from repro.coding import StochasticEncoder
from repro.eedn import (
    EednNetwork,
    SpikingEvaluator,
    ThresholdActivation,
    TrinaryConv2D,
    TrinaryDense,
    core_count,
    deploy_dense_network,
    group_channels,
)
from repro.eedn.grouping import fan_in_violations
from repro.errors import CompilationError
from repro.truenorth import Simulator


class TestGrouping:
    def test_small_layer_single_group(self):
        assert group_channels(16, 3) == 1  # 16 * 9 = 144 <= 256

    def test_large_layer_needs_groups(self):
        groups = group_channels(128, 3)
        assert (128 // groups) * 9 <= 256
        assert groups > 1

    def test_divisibility_respected(self):
        groups = group_channels(30, 3)
        assert 30 % groups == 0

    def test_impossible_kernel(self):
        with pytest.raises(ValueError):
            group_channels(1, 17)  # 289 > 256

    def test_violations_reported(self):
        net = EednNetwork(
            [
                TrinaryConv2D(128, 8, ksize=3, rng=0),  # fan-in 1152
                TrinaryDense(100, 10, rng=0),
            ]
        )
        problems = fan_in_violations(net)
        assert len(problems) == 1
        assert "conv fan-in 1152" in problems[0]

    def test_dense_tree_noted(self):
        net = EednNetwork([TrinaryDense(1000, 10, rng=0)])
        problems = fan_in_violations(net)
        assert "partial-sum tree" in problems[0]


class TestCoreCount:
    def test_small_dense_one_core(self):
        net = EednNetwork([TrinaryDense(64, 128, rng=0)])
        total, breakdown = core_count(net, (64,))
        assert total == 1
        assert breakdown[0].compute_cores == 1

    def test_wide_dense_uses_tree(self):
        net = EednNetwork([TrinaryDense(512, 18, rng=0)])
        total, _ = core_count(net, (512,))
        assert total >= 4  # 4 chunks of 128 lines + adders

    def test_parrot_architecture_near_paper(self):
        """64 -> 512 -> 18 lands near the paper's 8 cores per cell."""
        net = EednNetwork(
            [
                TrinaryDense(64, 512, rng=0),
                ThresholdActivation(0.0),
                TrinaryDense(512, 18, rng=0),
            ]
        )
        total, _ = core_count(net, (64,))
        assert 6 <= total <= 10

    def test_conv_counts_locations(self):
        net = EednNetwork([TrinaryConv2D(1, 8, ksize=3, rng=0)])
        total, breakdown = core_count(net, (1, 10, 10))
        assert total >= 1
        assert "conv" in breakdown[0].description

    def test_conv_over_budget_raises(self):
        net = EednNetwork([TrinaryConv2D(32, 8, ksize=3, rng=0)])  # fan-in 288
        with pytest.raises(CompilationError):
            core_count(net, (32, 8, 8))


class TestDeployment:
    def _trained_like_net(self, seed=0):
        rng = np.random.default_rng(seed)
        net = EednNetwork(
            [
                TrinaryDense(8, 16, rng=seed),
                ThresholdActivation(0.0),
                TrinaryDense(16, 4, rng=seed + 1),
            ]
        )
        # Realistic non-integer biases, kept negative so that an all-zero
        # input tick produces no spikes anywhere — this makes total spike
        # counts invariant to the deployment's pipeline latency.
        net.layers[0].bias[:] = rng.uniform(-0.9, -0.1, 16)
        net.layers[2].bias[:] = rng.uniform(-0.9, -0.1, 4)
        return net

    def test_deploy_matches_spiking_evaluator(self):
        """The cores-on-simulator deployment and the vectorised spiking
        evaluator implement the same per-tick semantics (hard outputs)."""
        net = self._trained_like_net()
        deployed = deploy_dense_network(net)
        ticks = 24
        flush = 8  # cover the multi-stage pipeline latency
        values = np.random.default_rng(5).random(8)
        raster = StochasticEncoder(ticks).encode(values, rng=9)

        result = Simulator(deployed.system, rng=0).run(
            ticks + flush,
            {"in": np.vstack([raster, np.zeros((flush, 8), bool)])},
        )
        hardware_counts = result.spike_counts("out")

        evaluator = SpikingEvaluator(net, ticks=ticks, rng=0, output_mode="hard")
        activity_counts = np.zeros(4, dtype=int)
        for tick in range(ticks):
            activity = raster[tick].astype(float)
            for weights, cutoff in evaluator._stages:
                activity = ((activity @ weights) >= cutoff).astype(float)
            activity_counts += activity.astype(int)
        assert np.array_equal(hardware_counts, activity_counts)

    def test_deploy_rejects_conv(self):
        net = EednNetwork([TrinaryConv2D(1, 2, ksize=2, rng=0)])
        with pytest.raises(CompilationError):
            deploy_dense_network(net)

    def test_deploy_core_count_positive(self):
        deployed = deploy_dense_network(self._trained_like_net())
        assert deployed.core_count >= 2
        assert deployed.stages == 2
