"""Tests for EednNetwork and the training loop."""

import numpy as np
import pytest

from repro.eedn import (
    EednNetwork,
    ThresholdActivation,
    TrainConfig,
    TrinaryDense,
    train_network,
)


def _separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, 8))
    y = (x[:, :4].sum(axis=1) > x[:, 4:].sum(axis=1)).astype(np.int64)
    return x, y


def _small_net(seed=1):
    return EednNetwork(
        [
            TrinaryDense(8, 64, rng=seed),
            ThresholdActivation(0.0),
            TrinaryDense(64, 2, rng=seed + 1),
        ]
    )


class TestNetwork:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            EednNetwork([])

    def test_forward_shape(self):
        net = _small_net()
        assert net.forward(np.ones((3, 8))).shape == (3, 2)

    def test_predict_argmax(self):
        net = _small_net()
        x = np.random.default_rng(0).random((5, 8))
        logits = net.forward(x)
        assert np.array_equal(net.predict(x), logits.argmax(axis=1))

    def test_parameter_count(self):
        net = _small_net()
        assert net.parameter_count() == 8 * 64 + 64 + 64 * 2 + 2


class TestTraining:
    def test_learns_separable_task(self):
        x, y = _separable_data()
        net = _small_net()
        result = train_network(
            net, x, y, TrainConfig(epochs=30, learning_rate=0.02), rng=3
        )
        assert result.train_accuracy[-1] > 0.85
        assert not result.blind

    def test_loss_decreases(self):
        x, y = _separable_data()
        net = _small_net()
        result = train_network(
            net, x, y, TrainConfig(epochs=15, learning_rate=0.02), rng=3
        )
        assert result.losses[-1] < result.losses[0]

    def test_blind_detection(self):
        # A frozen network (lr=0) with a biased head predicts one class.
        x, y = _separable_data()
        net = _small_net()
        net.layers[-1].bias[:] = np.array([100.0, 0.0])
        result = train_network(
            net, x, y, TrainConfig(epochs=1, learning_rate=0.0), rng=3
        )
        assert result.blind
        assert result.majority_fraction == 1.0

    def test_weight_clipping(self):
        x, y = _separable_data()
        net = _small_net()
        train_network(
            net,
            x,
            y,
            TrainConfig(epochs=3, learning_rate=0.5, clip_weights=True),
            rng=3,
        )
        for layer in (net.layers[0], net.layers[2]):
            assert np.abs(layer.weights).max() <= 1.0

    def test_augment_fn_applied(self):
        calls = []

        def augment(batch, rng):
            calls.append(batch.shape[0])
            return batch

        x, y = _separable_data(64)
        train_network(
            _small_net(),
            x,
            y,
            TrainConfig(epochs=1, batch_size=16),
            rng=3,
            augment_fn=augment,
        )
        assert sum(calls) == 64

    def test_soft_targets_accepted(self):
        x, y = _separable_data(64)
        soft = np.zeros((64, 2))
        soft[np.arange(64), y] = 1.0
        result = train_network(
            _small_net(), x, soft, TrainConfig(epochs=2), rng=3
        )
        assert len(result.losses) == 2

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            train_network(_small_net(), np.zeros((0, 8)), np.zeros(0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            train_network(_small_net(), np.zeros((4, 8)), np.zeros(3))

    def test_deterministic_given_seed(self):
        x, y = _separable_data()
        net_a = _small_net(seed=9)
        net_b = _small_net(seed=9)
        train_network(net_a, x, y, TrainConfig(epochs=3), rng=5)
        train_network(net_b, x, y, TrainConfig(epochs=3), rng=5)
        assert np.allclose(net_a.layers[0].weights, net_b.layers[0].weights)
