"""Flight recorder: ring semantics, dumps, and serve auto-dump triggers.

The recorder's contract (DESIGN.md §12): monotonic sequence numbers
assigned under the lock, a bounded ring retaining exactly the
contiguous range ``[dropped, total)``, an exact drop counter, and
single-document JSON dumps that never contain themselves. The service
integration half: ``flight_dump_path`` makes the dump automatic on
request failure and on breaker-open.
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import TransientScorerError
from repro.obs.flight import FlightRecorder, flight_recorder, new_trace_id
from repro.serve import CircuitBreaker, InferenceService


class TestRingSemantics:
    def test_sequences_are_monotonic_and_contiguous(self):
        recorder = FlightRecorder(maxlen=8)
        for i in range(5):
            recorder.record("enqueue", index=i)
        assert [e.seq for e in recorder.events()] == list(range(5))
        assert recorder.total == 5
        assert recorder.dropped == 0

    def test_eviction_keeps_exact_window(self):
        recorder = FlightRecorder(maxlen=4)
        for i in range(11):
            recorder.record("score", index=i)
        events = recorder.events()
        assert recorder.total == 11
        assert recorder.dropped == 7
        # Retained events are exactly the contiguous [dropped, total).
        assert [e.seq for e in events] == [7, 8, 9, 10]

    def test_record_returns_the_event(self):
        recorder = FlightRecorder(maxlen=2)
        event = recorder.record("retry", trace_id="t1", attempt=2)
        assert event.kind == "retry"
        assert event.trace_id == "t1"
        assert event.attrs == {"attempt": 2}
        assert event.thread == threading.current_thread().name

    def test_clear_resets_counters(self):
        recorder = FlightRecorder(maxlen=2)
        for _ in range(5):
            recorder.record("score")
        recorder.clear()
        assert recorder.total == 0
        assert recorder.dropped == 0
        assert recorder.events() == []
        assert recorder.record("score").seq == 0

    def test_maxlen_validation(self):
        with pytest.raises(ValueError, match="maxlen"):
            FlightRecorder(maxlen=0)

    def test_concurrent_appends_keep_the_contract(self):
        recorder = FlightRecorder(maxlen=64)
        per_thread = 50
        n_threads = 8

        def worker(name):
            for i in range(per_thread):
                recorder.record("enqueue", worker=name, index=i)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = n_threads * per_thread
        assert recorder.total == total
        assert recorder.dropped == total - 64
        assert [e.seq for e in recorder.events()] == list(
            range(total - 64, total)
        )

    def test_new_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 16 for t in ids)


class TestDump:
    def test_dump_document_shape(self, tmp_path):
        recorder = FlightRecorder(maxlen=4)
        for i in range(6):
            recorder.record("score", trace_id=f"t{i}", index=i)
        path = tmp_path / "flight.json"
        written = recorder.dump(str(path), reason="unit_test")

        document = json.loads(path.read_text())
        assert written == 4
        assert document["reason"] == "unit_test"
        assert document["dropped"] == 2
        assert document["total"] == 6
        assert document["retained"] == 4
        assert [e["seq"] for e in document["events"]] == [2, 3, 4, 5]
        assert document["events"][0]["attrs"] == {"index": 2}

    def test_dump_never_contains_itself(self, tmp_path):
        recorder = FlightRecorder(maxlen=8)
        recorder.record("score")
        path = tmp_path / "flight.json"
        recorder.dump(str(path))
        document = json.loads(path.read_text())
        assert all(e["kind"] != "dump" for e in document["events"])
        # ... but the dump is on the record for the *next* dump.
        assert recorder.events()[-1].kind == "dump"


class _FailingScorer:
    """Raises a transient fault on every call."""

    model_id = "flight-test-down"
    cacheable = False

    def decision_function(self, matrix):
        raise TransientScorerError("scorer down")


class _HealthyScorer:
    model_id = "flight-test-up"
    cacheable = False

    def decision_function(self, matrix):
        return np.asarray(matrix)[:, 0]


class TestServeAutoDump:
    def setup_method(self):
        flight_recorder().clear()

    def test_auto_dump_on_request_failure(self, tmp_path):
        path = tmp_path / "failure.json"
        service = InferenceService(
            _FailingScorer(),
            max_batch_size=2,
            max_wait_ms=0.5,
            cache_capacity=0,
            flight_dump_path=str(path),
        )
        with service:
            with pytest.raises(TransientScorerError):
                service.score(np.zeros(3), timeout_s=5.0)
        document = json.loads(path.read_text())
        assert document["reason"] == "request_failed"
        kinds = [e["kind"] for e in document["events"]]
        assert "request_failed" in kinds
        assert "enqueue" in kinds
        failed = next(
            e for e in document["events"] if e["kind"] == "request_failed"
        )
        assert failed["trace_id"]
        assert "TransientScorerError" in failed["attrs"]["error"]

    def test_auto_dump_on_breaker_open(self, tmp_path):
        path = tmp_path / "breaker.json"
        service = InferenceService(
            _FailingScorer(),
            max_batch_size=2,
            max_wait_ms=0.5,
            cache_capacity=0,
            circuit_breaker=CircuitBreaker(
                failure_threshold=1, reset_timeout_s=60.0
            ),
            degraded_value=-1.0,
            flight_dump_path=str(path),
        )
        with service:
            assert service.score(np.zeros(3), timeout_s=5.0) == -1.0
        document = json.loads(path.read_text())
        assert document["reason"] in ("breaker_open", "request_failed")
        transitions = [
            e
            for e in document["events"]
            if e["kind"] == "breaker_transition"
        ]
        assert any(e["attrs"]["to_state"] == "open" for e in transitions)

    def test_no_dump_path_no_file(self, tmp_path):
        service = InferenceService(
            _FailingScorer(),
            max_batch_size=2,
            max_wait_ms=0.5,
            cache_capacity=0,
        )
        with service:
            with pytest.raises(TransientScorerError):
                service.score(np.zeros(3), timeout_s=5.0)
        assert list(tmp_path.iterdir()) == []

    def test_healthy_run_records_lifecycle(self):
        service = InferenceService(
            _HealthyScorer(),
            max_batch_size=4,
            max_wait_ms=0.5,
            cache_capacity=0,
        )
        with service:
            assert service.score(np.full(3, 2.0), timeout_s=5.0) == 2.0
        kinds = [e.kind for e in flight_recorder().events()]
        for expected in ("enqueue", "batch_form", "score"):
            assert expected in kinds
        score_event = next(
            e for e in flight_recorder().events() if e.kind == "score"
        )
        assert score_event.attrs["size"] == 1
        assert score_event.attrs["trace_ids"]
