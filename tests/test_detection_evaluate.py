"""Tests for miss-rate/FPPI evaluation."""

import numpy as np
import pytest

from repro.detection import evaluate_detections, log_average_miss_rate


def _boxes(*rows):
    return np.array(rows, dtype=np.float64) if rows else np.zeros((0, 4))


class TestMatching:
    def test_perfect_detection(self):
        detections = [(_boxes([0, 0, 10, 20]), np.array([1.0]))]
        truth = [_boxes([0, 0, 10, 20])]
        curve = evaluate_detections(detections, truth)
        assert curve.miss_rate[-1] == 0.0
        assert curve.fppi[-1] == 0.0

    def test_low_iou_is_false_positive(self):
        detections = [(_boxes([50, 50, 10, 20]), np.array([1.0]))]
        truth = [_boxes([0, 0, 10, 20])]
        curve = evaluate_detections(detections, truth)
        assert curve.miss_rate[-1] == 1.0
        assert curve.fppi[-1] == 1.0

    def test_half_iou_threshold(self):
        # IoU exactly 0.5 counts as a match ("larger than or equal to").
        detections = [(_boxes([0, 0, 10, 10]), np.array([1.0]))]
        truth = [_boxes([0, 5, 10, 10])]  # IoU = 1/3 < 0.5 -> miss
        curve = evaluate_detections(detections, truth)
        assert curve.miss_rate[-1] == 1.0

        detections = [(_boxes([0, 0, 10, 20]), np.array([1.0]))]
        truth = [_boxes([0, 0, 10, 30])]  # IoU = 200/300 = 0.67 -> hit
        curve = evaluate_detections(detections, truth)
        assert curve.miss_rate[-1] == 0.0

    def test_double_detection_one_credit(self):
        detections = [
            (_boxes([0, 0, 10, 20], [1, 0, 10, 20]), np.array([0.9, 0.8]))
        ]
        truth = [_boxes([0, 0, 10, 20])]
        curve = evaluate_detections(detections, truth)
        assert curve.miss_rate[-1] == 0.0
        assert curve.fppi[-1] == 1.0  # the duplicate is a false positive

    def test_greedy_matching_prefers_best_score(self):
        detections = [
            (_boxes([0, 0, 10, 20], [0, 1, 10, 20]), np.array([0.5, 0.9]))
        ]
        truth = [_boxes([0, 0, 10, 20])]
        curve = evaluate_detections(detections, truth)
        # The higher-scored box takes the ground truth.
        assert curve.miss_rate[-1] == 0.0

    def test_curve_monotone_in_threshold(self):
        rng = np.random.default_rng(0)
        detections = []
        truth = []
        for _ in range(5):
            n = rng.integers(1, 6)
            boxes = np.column_stack(
                [rng.uniform(0, 50, n), rng.uniform(0, 50, n),
                 np.full(n, 10.0), np.full(n, 20.0)]
            )
            detections.append((boxes, rng.random(n)))
            truth.append(_boxes([10, 10, 10, 20]))
        curve = evaluate_detections(detections, truth)
        assert (np.diff(curve.fppi) >= 0).all()
        assert (np.diff(curve.miss_rate) <= 1e-12).all()


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_detections([(np.zeros((0, 4)), np.zeros(0))], [])

    def test_no_ground_truth(self):
        with pytest.raises(ValueError):
            evaluate_detections(
                [(np.zeros((0, 4)), np.zeros(0))], [np.zeros((0, 4))]
            )

    def test_no_detections_full_miss(self):
        curve = evaluate_detections(
            [(np.zeros((0, 4)), np.zeros(0))], [_boxes([0, 0, 5, 5])]
        )
        assert curve.miss_rate[-1] == 1.0


class TestLogAverageMissRate:
    def test_perfect_curve(self):
        fppi = np.array([0.0, 0.5, 1.0])
        miss = np.array([0.0, 0.0, 0.0])
        assert log_average_miss_rate(fppi, miss) < 1e-9

    def test_all_miss(self):
        fppi = np.array([0.0])
        miss = np.array([1.0])
        assert log_average_miss_rate(fppi, miss) == pytest.approx(1.0)

    def test_unreached_fppi_counts_as_miss_one(self):
        # Curve only reaches FPPI 0.5 upward: samples below use 1.0.
        fppi = np.array([0.5, 1.0])
        miss = np.array([0.2, 0.1])
        value = log_average_miss_rate(fppi, miss)
        assert value > 0.2  # dragged up by the unreachable low-FPPI region

    def test_miss_rate_at_helper(self):
        detections = [(_boxes([0, 0, 10, 20]), np.array([1.0]))]
        truth = [_boxes([0, 0, 10, 20])]
        curve = evaluate_detections(detections, truth)
        assert curve.miss_rate_at(1.0) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            log_average_miss_rate(np.zeros(3), np.zeros(4))
