"""Tests for the fixed-point FPGA HoG."""

import numpy as np
import pytest

from repro.hog import FpgaHogConfig, FpgaHogDescriptor, HogDescriptor
from repro.hog.fpga import _alpha_max_beta_min


class TestMagnitudeApproximation:
    def test_axis_aligned_exact(self):
        assert _alpha_max_beta_min(np.array([10]), np.array([0]))[0] == 10

    def test_diagonal_error_bounded(self):
        approx = _alpha_max_beta_min(np.array([10]), np.array([10]))[0]
        exact = np.hypot(10, 10)
        assert abs(approx - exact) / exact < 0.12

    def test_random_error_bound(self):
        rng = np.random.default_rng(0)
        ix = rng.integers(-255, 256, 500)
        iy = rng.integers(-255, 256, 500)
        approx = _alpha_max_beta_min(ix, iy)
        exact = np.hypot(ix, iy)
        nonzero = exact > 0
        rel = np.abs(approx[nonzero] - exact[nonzero]) / exact[nonzero]
        assert rel.max() < 0.13  # the alpha-max-beta-min worst case


class TestOrientationBinning:
    def _bin_of_angle(self, degrees, n_bins=9):
        theta = np.radians(degrees)
        ix = np.array([[np.cos(theta) * 100]]).astype(np.int64)
        iy = np.array([[np.sin(theta) * 100]]).astype(np.int64)
        descriptor = FpgaHogDescriptor(FpgaHogConfig(n_bins=n_bins))
        return descriptor._orientation_bin(ix, iy)[0, 0]

    def test_bin_centers(self):
        for angle, expected in [(5, 0), (25, 1), (45, 2), (85, 4), (95, 4)]:
            assert self._bin_of_angle(angle) == expected, angle

    def test_unsigned_fold(self):
        # 170 degrees folds like 10 degrees mirrored -> last bin.
        assert self._bin_of_angle(170) == 8

    def test_zero_gradient_bin_zero(self):
        descriptor = FpgaHogDescriptor()
        bins = descriptor._orientation_bin(np.zeros((2, 2), int), np.zeros((2, 2), int))
        assert not bins.any()


class TestDescriptor:
    def test_feature_length(self):
        assert FpgaHogDescriptor().feature_length((128, 64)) == 3780

    def test_compute_shape(self):
        image = np.random.default_rng(0).random((128, 64))
        assert FpgaHogDescriptor().compute(image).shape == (3780,)

    def test_uint8_and_float_agree(self):
        rng = np.random.default_rng(1)
        float_image = rng.random((32, 32))
        uint8_image = np.round(float_image * 255).astype(np.uint8)
        descriptor = FpgaHogDescriptor()
        a = descriptor.compute(float_image)
        b = descriptor.compute(uint8_image)
        assert np.allclose(a, b)

    def test_tracks_reference_hog(self):
        """Fixed-point features correlate strongly with the float HoG."""
        rng = np.random.default_rng(2)
        image = rng.random((64, 64))
        fpga = FpgaHogDescriptor().compute(image)
        reference = HogDescriptor().compute(image)
        correlation = np.corrcoef(fpga, reference)[0, 1]
        assert correlation > 0.8

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            FpgaHogDescriptor(FpgaHogConfig(n_bins=1))
