"""Tests for block normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hog.blocks import block_grid_shape, normalize_blocks


def _grid(cy=4, cx=6, bins=9, seed=0):
    return np.random.default_rng(seed).random((cy, cx, bins))


class TestShapes:
    def test_block_count(self):
        blocks = normalize_blocks(_grid(4, 6, 9))
        assert blocks.shape == (3, 5, 36)

    def test_block_grid_shape_helper(self):
        assert block_grid_shape(16, 8) == (15, 7)

    def test_stride_two(self):
        blocks = normalize_blocks(_grid(6, 6, 4), block_size=2, stride=2)
        assert blocks.shape == (3, 3, 16)

    def test_paper_feature_count(self):
        # 64x128 window: 8x16 cells -> 7x15 blocks x 18 bins x 4 cells = 7560.
        blocks = normalize_blocks(_grid(16, 8, 18))
        assert blocks.size == 7 * 15 * 4 * 18 == 7560

    def test_too_small_grid(self):
        with pytest.raises(ValueError):
            normalize_blocks(_grid(1, 4, 9))


class TestMethods:
    def test_l2_unit_norm(self):
        blocks = normalize_blocks(_grid(), method="l2")
        norms = np.linalg.norm(blocks, axis=2)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_l1_unit_norm(self):
        blocks = normalize_blocks(_grid(), method="l1")
        sums = np.abs(blocks).sum(axis=2)
        assert np.allclose(sums, 1.0, atol=1e-6)

    def test_l2hys_clips(self):
        grid = np.zeros((2, 2, 4))
        grid[0, 0, 0] = 100.0  # one dominant component
        blocks = normalize_blocks(grid, method="l2hys")
        assert blocks.max() <= 0.2 / 0.2 + 1e-6  # renormalised after clip

    def test_none_passthrough(self):
        grid = _grid()
        blocks = normalize_blocks(grid, method="none")
        assert np.allclose(blocks[0, 0], grid[0:2, 0:2].ravel())

    def test_zero_block_stays_finite(self):
        blocks = normalize_blocks(np.zeros((2, 2, 4)), method="l2")
        assert np.isfinite(blocks).all()
        assert np.allclose(blocks, 0.0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            normalize_blocks(_grid(), method="l3")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            normalize_blocks(np.ones((4, 4)))


class TestProperties:
    @given(
        arrays(np.float64, (4, 4, 6), elements=st.floats(0, 100, allow_nan=False))
    )
    @settings(max_examples=30, deadline=None)
    def test_l2_norm_at_most_one(self, grid):
        blocks = normalize_blocks(grid, method="l2")
        assert np.linalg.norm(blocks, axis=2).max() <= 1.0 + 1e-9

    @given(
        arrays(np.float64, (3, 3, 4), elements=st.floats(0, 50, allow_nan=False))
    )
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance_of_l2(self, grid):
        a = normalize_blocks(grid + 1e-3, method="l2")
        b = normalize_blocks((grid + 1e-3) * 7.0, method="l2")
        assert np.allclose(a, b, atol=1e-5)
