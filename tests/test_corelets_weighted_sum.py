"""Tests for WeightedSumCorelet across modes and weight structures."""

import numpy as np
import pytest

from repro.coding import RateEncoder
from repro.corelets import compile_corelet
from repro.corelets.library import NeuronMode, WeightedSumCorelet
from repro.errors import CompilationError
from repro.truenorth import Simulator


def _run_counts(corelet, values, window=16, extra=24, seed=0):
    program = compile_corelet(corelet)
    encoder = RateEncoder(window)
    raster = np.zeros((window + extra, len(values)), dtype=bool)
    raster[:window] = encoder.encode(np.array(values))
    result = Simulator(program.system, rng=seed).run(
        window + extra, {"in": raster}
    )
    return result.spike_counts("out"), program


class TestRectRate:
    def test_identity_weight(self):
        counts, program = _run_counts(WeightedSumCorelet(np.array([[1]])), [0.5])
        assert counts[0] == 8
        assert program.core_count == 1  # single line, |w| = 1: no splitter

    def test_scaling_weight_uses_splitter(self):
        counts, program = _run_counts(WeightedSumCorelet(np.array([[3]])), [0.25])
        assert counts[0] == 12
        assert program.core_count == 2  # splitter + sum

    def test_rectified_difference(self):
        weights = np.array([[1], [-1]])
        counts, _ = _run_counts(WeightedSumCorelet(weights), [0.75, 0.25])
        assert counts[0] == 8

    def test_rectification_clips_negative(self):
        weights = np.array([[1], [-1]])
        counts, _ = _run_counts(WeightedSumCorelet(weights), [0.25, 0.75])
        assert counts[0] <= 1  # small phase error allowed

    def test_threshold_divides(self):
        counts, _ = _run_counts(
            WeightedSumCorelet(np.array([[1]]), threshold=4), [1.0]
        )
        assert counts[0] == 4  # 16 spikes / threshold 4

    def test_multiple_outputs(self):
        weights = np.array([[1, 2], [1, 0]])
        counts, _ = _run_counts(WeightedSumCorelet(weights), [0.5, 0.5])
        assert counts[0] == 16  # a + b
        assert counts[1] == 16  # 2a

    def test_many_outputs_split_across_cores(self):
        weights = np.ones((2, 300), dtype=int)
        program = compile_corelet(WeightedSumCorelet(weights))
        # 300 neurons -> 2 sum cores; inputs copied to both via splitter.
        assert program.core_count >= 3
        assert program.built.output_width == 300


class TestModes:
    def test_indicator_persists(self):
        corelet = WeightedSumCorelet(
            np.array([[1], [-1]]), threshold=1, mode=NeuronMode.INDICATOR
        )
        program = compile_corelet(corelet)
        window = 8
        raster = np.zeros((window + 8, 2), dtype=bool)
        raster[:window] = RateEncoder(window).encode(np.array([0.75, 0.25]))
        result = Simulator(program.system, rng=0).run(window + 8, {"in": raster})
        # After the data window the indicator keeps firing every tick.
        assert result.probe_spikes["out"][-4:, 0].all()

    def test_one_shot_fires_once(self):
        corelet = WeightedSumCorelet(
            np.array([[1]]), threshold=1, mode=NeuronMode.ONE_SHOT
        )
        counts, _ = _run_counts(corelet, [1.0])
        assert counts[0] == 1

    def test_pulse_is_per_tick(self):
        corelet = WeightedSumCorelet(
            np.array([[1]]), threshold=1, mode=NeuronMode.PULSE
        )
        counts, _ = _run_counts(corelet, [0.5], window=16)
        assert counts[0] == 8  # fires exactly on input ticks


class TestValidation:
    def test_non_integer_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedSumCorelet(np.array([[0.5]]))

    def test_integer_valued_floats_accepted(self):
        corelet = WeightedSumCorelet(np.array([[2.0]]))
        assert corelet.weights.dtype == np.int64

    def test_1d_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedSumCorelet(np.array([1, 2]))

    def test_threshold_count_mismatch(self):
        with pytest.raises(ValueError):
            WeightedSumCorelet(np.ones((2, 3), dtype=int), threshold=[1, 2])

    def test_threshold_minimum(self):
        with pytest.raises(ValueError):
            WeightedSumCorelet(np.ones((1, 1), dtype=int), threshold=0)

    def test_leak_count_mismatch(self):
        with pytest.raises(ValueError):
            WeightedSumCorelet(np.ones((1, 2), dtype=int), leak=[1])

    def test_replica_budget_enforced(self):
        # 200 lines x |w|=2 = 400 replica axons > 256.
        weights = np.full((200, 1), 2, dtype=int)
        with pytest.raises(CompilationError):
            compile_corelet(WeightedSumCorelet(weights))

    def test_replica_count_reported(self):
        corelet = WeightedSumCorelet(np.array([[3], [-2]]))
        assert corelet.replica_count() == 5
