"""Tests for Eedn layers: trinarisation, STE, conv/dense mechanics."""

import numpy as np
import pytest

from repro.eedn.layers import (
    AveragePool2D,
    Flatten,
    ThresholdActivation,
    TrinaryConv2D,
    TrinaryDense,
    trinarize,
)


class TestTrinarize:
    def test_values_are_trinary(self):
        rng = np.random.default_rng(0)
        out = trinarize(rng.normal(size=(50, 50)))
        assert set(np.unique(out)).issubset({-1.0, 0.0, 1.0})

    def test_large_weights_keep_sign(self):
        weights = np.array([5.0, -5.0, 0.001])
        out = trinarize(weights)
        assert out[0] == 1.0 and out[1] == -1.0 and out[2] == 0.0

    def test_dead_zone_scales_with_magnitude(self):
        weights = np.array([0.1, 0.1, 1.0])
        out = trinarize(weights)
        assert out[2] == 1.0
        assert out[0] == 0.0  # below 0.7 * mean|w|

    def test_empty(self):
        assert trinarize(np.zeros(0)).size == 0


class TestThresholdActivation:
    def test_binary_output(self):
        activation = ThresholdActivation(0.0)
        out = activation.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 1.0, 1.0]])

    def test_ste_window_gates_gradient(self):
        activation = ThresholdActivation(0.0, ste_window=1.0)
        activation.forward(np.array([[0.5, 5.0, -0.5, -5.0]]), training=True)
        grad = activation.backward(np.ones((1, 4)))
        assert np.array_equal(grad, [[1.0, 0.0, 1.0, 0.0]])

    def test_backward_requires_forward(self):
        with pytest.raises(RuntimeError):
            ThresholdActivation().backward(np.ones((1, 2)))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ThresholdActivation(0.0, ste_window=0.0)


class TestTrinaryDense:
    def test_forward_uses_trinary_weights(self):
        layer = TrinaryDense(4, 3, rng=0)
        deployed = layer.deployed_weights()
        x = np.ones((2, 4))
        assert np.allclose(layer.forward(x), x @ deployed + layer.bias)

    def test_backward_shapes(self):
        layer = TrinaryDense(4, 3, rng=0)
        x = np.random.default_rng(1).random((5, 4))
        layer.forward(x, training=True)
        grad_in = layer.backward(np.ones((5, 3)))
        assert grad_in.shape == (5, 4)
        assert layer.grads()["weights"].shape == (4, 3)
        assert layer.grads()["bias"].shape == (3,)

    def test_straight_through_weight_gradient(self):
        layer = TrinaryDense(2, 1, rng=0)
        x = np.array([[1.0, 2.0]])
        layer.forward(x, training=True)
        layer.backward(np.array([[1.0]]))
        assert np.allclose(layer.grads()["weights"], [[1.0], [2.0]])

    def test_1d_input_promoted(self):
        layer = TrinaryDense(4, 2, rng=0)
        assert layer.forward(np.ones(4)).shape == (1, 2)

    def test_wrong_width(self):
        layer = TrinaryDense(4, 2, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 5)))

    def test_backward_requires_training_forward(self):
        layer = TrinaryDense(4, 2, rng=0)
        layer.forward(np.ones((1, 4)))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TrinaryDense(0, 2)


class TestTrinaryConv2D:
    def test_output_shape(self):
        conv = TrinaryConv2D(3, 6, ksize=3, stride=1, padding=1, rng=0)
        out = conv.forward(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 6, 8, 8)

    def test_stride(self):
        conv = TrinaryConv2D(1, 2, ksize=3, stride=2, rng=0)
        out = conv.forward(np.zeros((1, 1, 9, 9)))
        assert out.shape == (1, 2, 4, 4)

    def test_groups_fan_in(self):
        conv = TrinaryConv2D(8, 8, ksize=3, groups=4, rng=0)
        assert conv.fan_in() == 2 * 9

    def test_groups_divide_channels(self):
        with pytest.raises(ValueError):
            TrinaryConv2D(6, 8, groups=4)

    def test_matches_manual_convolution(self):
        conv = TrinaryConv2D(1, 1, ksize=2, rng=0)
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        w = conv.deployed_weights()[0, 0]
        out = conv.forward(x)
        expected = sum(
            w[dy, dx] * x[0, 0, dy : dy + 2, dx : dx + 2]
            for dy in range(2)
            for dx in range(2)
        )
        assert np.allclose(out[0, 0], expected + conv.bias[0])

    def test_gradient_against_numerical(self):
        """The conv backward pass agrees with a finite-difference check
        through the (piecewise-constant-free) linear part."""
        conv = TrinaryConv2D(1, 1, ksize=2, rng=3)
        x = np.random.default_rng(0).random((1, 1, 4, 4))
        out = conv.forward(x, training=True)
        grad_out = np.random.default_rng(1).random(out.shape)
        grad_in = conv.backward(grad_out)

        eps = 1e-6
        for index in [(0, 0, 1, 1), (0, 0, 2, 3)]:
            bumped = x.copy()
            bumped[index] += eps
            delta = (conv.forward(bumped) - out).sum() / eps
            # d(sum out)/dx -> compare against grad with all-ones weighting
            del delta
            plus = (conv.forward(bumped) * grad_out).sum()
            minus = (conv.forward(x) * grad_out).sum()
            numeric = (plus - minus) / eps
            assert np.isclose(numeric, grad_in[index], atol=1e-4)

    def test_too_small_input(self):
        conv = TrinaryConv2D(1, 1, ksize=5, rng=0)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 1, 3, 3)))


class TestFlattenPool:
    def test_flatten_round_trip(self):
        flatten = Flatten()
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        out = flatten.forward(x, training=True)
        assert out.shape == (2, 12)
        back = flatten.backward(out)
        assert back.shape == x.shape

    def test_avgpool_values(self):
        pool = AveragePool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool.forward(x, training=True)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == np.mean([0, 1, 4, 5])

    def test_avgpool_backward_distributes(self):
        pool = AveragePool2D(2)
        x = np.zeros((1, 1, 4, 4))
        pool.forward(x, training=True)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert np.allclose(grad, 0.25)

    def test_avgpool_invalid_size(self):
        with pytest.raises(ValueError):
            AveragePool2D(0)
