"""Fault-rate sweep experiment: plan mapping, metrics, and a tiny run."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import faults_sweep
from repro.faults import (
    DroppedSpikes,
    DuplicatedSpikes,
    RandomDeadCores,
    RandomStuckNeurons,
    ThresholdDrift,
    WeightBitFlips,
)


class TestBuildFaultPlan:
    def test_zero_rate_is_clean(self):
        assert faults_sweep.build_fault_plan("drop", 0.0) is None

    @pytest.mark.parametrize(
        "kind,spec_type",
        [
            ("drop", DroppedSpikes),
            ("dup", DuplicatedSpikes),
            ("dead", RandomDeadCores),
            ("stuck", RandomStuckNeurons),
            ("flip", WeightBitFlips),
            ("drift", ThresholdDrift),
        ],
    )
    def test_kind_mapping(self, kind, spec_type):
        plan = faults_sweep.build_fault_plan(kind, 0.25, seed=9)
        assert len(plan.faults) == 1
        assert isinstance(plan.faults[0], spec_type)
        assert plan.seed == 9

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            faults_sweep.build_fault_plan("meteor", 0.5)

    def test_out_of_range_rate_propagates(self):
        with pytest.raises(ConfigurationError):
            faults_sweep.build_fault_plan("drop", 1.5)

    def test_drift_scales(self):
        plan = faults_sweep.build_fault_plan("drift", 0.5)
        assert plan.faults[0].scale == pytest.approx(
            0.5 * faults_sweep.DRIFT_SCALE
        )


class TestFeatures:
    class _GridExtractor:
        """cell_grid = deterministic ramp, for shape/pooling checks."""

        def cell_grid(self, window):
            return np.arange(16 * 8 * 18, dtype=float).reshape(16, 8, 18)

    def test_pooled_shape_and_determinism(self):
        windows = np.zeros((3, 128, 64))
        feats = faults_sweep.pooled_window_features(self._GridExtractor(), windows)
        assert feats.shape == (3, 4 * 4 * 6)
        np.testing.assert_array_equal(feats[0], feats[1])

    def test_bin_merge_sums_adjacent_bins(self):
        grid = np.zeros((16, 8, 18))
        grid[:, :, 0] = 1.0
        grid[:, :, 1] = 2.0

        class E:
            def cell_grid(self, window):
                return grid

        feats = faults_sweep.pooled_window_features(
            E(), np.zeros((1, 128, 64)), pool=(16, 8), bin_merge=3
        )
        # one spatial cell, 6 merged bins; first merged bin = 1 + 2 + 0
        assert feats.shape == (1, 6)
        assert feats[0, 0] == pytest.approx(3.0)

    def test_calibrated_scale_targets_q95(self):
        counts = np.linspace(0.0, 10.0, 101)
        scale = faults_sweep.calibrated_scale(counts)
        assert np.quantile(counts * scale, 0.95) == pytest.approx(
            faults_sweep.FEATURE_TARGET
        )

    def test_calibrated_scale_of_zeros_is_identity(self):
        assert faults_sweep.calibrated_scale(np.zeros(8)) == 1.0


class TestMonotoneCheck:
    def _result(self, curve):
        result = faults_sweep.FaultSweepResult(
            fault_kind="drop",
            rates=[0.0, 0.5, 1.0],
            fault_seeds=[0],
            ticks=4,
            hidden=8,
        )
        result.miss_rates["NApprox"] = curve
        result.false_positive_rates["NApprox"] = [0.0] * len(curve)
        result.mean_margins["NApprox"] = [0.0] * len(curve)
        return result

    def test_monotone_curve_passes(self):
        assert self._result([0.1, 0.5, 1.0]).check_monotone(("NApprox",)) == []

    def test_small_dip_within_tolerance_passes(self):
        assert self._result([0.1, 0.08, 1.0]).check_monotone(("NApprox",)) == []

    def test_large_dip_fails(self):
        violations = self._result([0.5, 0.1, 1.0]).check_monotone(("NApprox",))
        assert violations and "fell" in violations[0]

    def test_flat_curve_fails_net_degradation(self):
        violations = self._result([0.3, 0.3, 0.29]).check_monotone(
            ("NApprox",), tolerance=0.06
        )
        assert any("net degradation" in v for v in violations)

    def test_missing_curve_reported(self):
        violations = self._result([0.0, 0.5, 1.0]).check_monotone(("Parrot",))
        assert violations == ["Parrot: no curve recorded"]


class TestTinyRun:
    @pytest.fixture(scope="class")
    def result(self):
        return faults_sweep.run(
            rates=(0.0, 1.0),
            fault_kind="drop",
            approaches=("NApprox", "SVM"),
            hidden=24,
            ticks=8,
            fault_seeds=(0,),
            n_train=16,
            n_eval=10,
            epochs=8,
            rng=1,
        )

    def test_curves_cover_requested_approaches(self, result):
        assert set(result.miss_rates) == {"NApprox", "SVM"}
        assert all(len(c) == 2 for c in result.miss_rates.values())

    def test_total_fault_rate_maxes_miss(self, result):
        assert result.miss_rates["NApprox"][-1] == 1.0

    def test_svm_curve_is_flat(self, result):
        curve = result.miss_rates["SVM"]
        assert curve[0] == curve[1]

    def test_payload_roundtrips_through_json(self, result, tmp_path):
        path = tmp_path / "bench.json"
        faults_sweep.write_json(result, str(path))
        payload = json.loads(path.read_text())
        assert payload["fault_kind"] == "drop"
        assert payload["rates"] == [0.0, 1.0]
        assert set(payload["approaches"]) == {"NApprox", "SVM"}
        for curves in payload["approaches"].values():
            assert set(curves) == {
                "miss_rate", "false_positive_rate", "mean_margin",
            }

    def test_report_formats(self, result):
        text = faults_sweep.format_report(result)
        assert "NApprox" in text and "SVM" in text and "1.000" in text
