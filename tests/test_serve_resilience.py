"""Serve-layer resilience: retry, circuit breaker, degraded mode."""

import threading

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    TransientScorerError,
)
from repro.obs import MetricsRegistry
from repro.serve import (
    CircuitBreaker,
    FlakyModel,
    InferenceService,
    ResilientExecutor,
    RetryPolicy,
)
from repro.serve.resilience import CLOSED, HALF_OPEN, OPEN


def _double(matrix):
    return np.asarray(matrix)[:, 0] * 2.0


class _FailNTimes:
    """Raises TransientScorerError for the first ``n`` calls."""

    def __init__(self, n, exc=TransientScorerError):
        self.n = n
        self.exc = exc
        self.calls = 0

    def __call__(self, matrix):
        self.calls += 1
        if self.calls <= self.n:
            raise self.exc(f"boom {self.calls}")
        return _double(matrix)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=4, backoff_ms=10.0, multiplier=2.0)
        assert policy.backoff_s(0) == pytest.approx(0.010)
        assert policy.backoff_s(2) == pytest.approx(0.040)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_ms=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientScorerError("x"))
        assert not policy.is_retryable(ValueError("x"))


class TestResilientExecutor:
    def test_recovers_within_budget(self):
        fn = _FailNTimes(2)
        sleeps = []
        executor = ResilientExecutor(
            fn, retry=RetryPolicy(max_attempts=3, backoff_ms=1.0),
            sleep=sleeps.append,
        )
        out = executor(np.array([[3.0]]))
        np.testing.assert_array_equal(out, [6.0])
        assert fn.calls == 3
        assert sleeps == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_retry_exhaustion_reraises_last_error(self):
        fn = _FailNTimes(5)
        executor = ResilientExecutor(
            fn, retry=RetryPolicy(max_attempts=3, backoff_ms=0.0),
            sleep=lambda _: None,
        )
        with pytest.raises(TransientScorerError, match="boom 3"):
            executor(np.zeros((1, 1)))
        assert fn.calls == 3

    def test_non_retryable_fails_immediately(self):
        fn = _FailNTimes(5, exc=ValueError)
        executor = ResilientExecutor(
            fn, retry=RetryPolicy(max_attempts=3, backoff_ms=0.0),
            sleep=lambda _: None,
        )
        with pytest.raises(ValueError):
            executor(np.zeros((1, 1)))
        assert fn.calls == 1

    def test_no_retry_policy_means_single_attempt(self):
        fn = _FailNTimes(1)
        executor = ResilientExecutor(fn)
        with pytest.raises(TransientScorerError):
            executor(np.zeros((1, 1)))
        assert fn.calls == 1

    def test_retries_counted_in_registry(self):
        registry = MetricsRegistry()
        fn = _FailNTimes(2)
        executor = ResilientExecutor(
            fn, retry=RetryPolicy(max_attempts=3, backoff_ms=0.0),
            registry=registry, sleep=lambda _: None,
        )
        executor(np.array([[1.0]]))
        assert registry.snapshot()["counters"]["serve_retries_total"] == 2


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0, clock=clock)
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        breaker.before_call()  # takes the single probe slot
        with pytest.raises(CircuitOpenError, match="half-open"):
            breaker.before_call()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.before_call()  # closed again: calls flow

    def test_half_open_failure_reopens_for_full_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.5)
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        clock.advance(0.5)
        assert breaker.state == HALF_OPEN

    def test_state_change_callback_sees_every_transition(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock,
            on_state_change=seen.append,
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.before_call()
        breaker.record_success()
        assert seen == [OPEN, HALF_OPEN, CLOSED]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout_s=-1.0)

    def test_executor_respects_open_breaker(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0, clock=clock)
        fn = _FailNTimes(1)
        executor = ResilientExecutor(
            fn, retry=RetryPolicy(max_attempts=3, backoff_ms=0.0),
            breaker=breaker, sleep=lambda _: None,
        )
        # first attempt fails and trips the breaker; the retry is then
        # refused by the breaker without reaching the scorer.
        with pytest.raises(CircuitOpenError):
            executor(np.zeros((1, 1)))
        assert fn.calls == 1


class TestCircuitBreakerRaces:
    """Regressions for the open -> half-open transition races.

    Before admission tokens, a slow call admitted while CLOSED could
    report its outcome after the breaker tripped — closing the circuit
    without a probe, or releasing the half-open probe slot so a second
    probe slipped through. Every scenario here is driven by an injected
    clock, so the interleavings are exact, not timing-dependent.
    """

    def test_stale_success_cannot_close_a_tripped_breaker(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0, clock=clock)
        stale_token = breaker.before_call()  # admitted while CLOSED
        breaker.before_call()
        breaker.record_failure()  # trips to OPEN
        assert breaker.state == OPEN
        breaker.record_success(stale_token)  # slow call finishes late
        assert breaker.state == OPEN  # not closed behind the trip
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_stale_failure_cannot_release_the_probe_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        slow_token = breaker.before_call()  # admitted while CLOSED
        breaker.before_call()
        breaker.record_failure()  # OPEN
        clock.advance(1.0)
        probe_token = breaker.before_call()  # the half-open probe
        # the old slow call now fails; with the stale token it must not
        # re-open the breaker (stealing the in-flight probe's verdict)
        breaker.record_failure(slow_token)
        assert breaker.state == HALF_OPEN
        with pytest.raises(CircuitOpenError, match="half-open"):
            breaker.before_call()  # probe slot still held
        breaker.record_success(probe_token)
        assert breaker.state == CLOSED

    def test_exactly_one_probe_admitted_under_thread_contention(self):
        """N threads race at cooldown expiry; exactly one gets through."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        breaker.before_call()
        breaker.record_failure()
        clock.advance(1.0)  # cooldown elapsed: next call is the probe

        n_threads = 16
        barrier = threading.Barrier(n_threads)
        admitted, refused = [], []

        def contender(i):
            barrier.wait()
            try:
                token = breaker.before_call()
            except CircuitOpenError:
                refused.append(i)
            else:
                admitted.append((i, token))

        threads = [
            threading.Thread(target=contender, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1
        assert len(refused) == n_threads - 1
        # the single probe's success closes the breaker for everyone
        breaker.record_success(admitted[0][1])
        assert breaker.state == CLOSED

    def test_unconditional_outcomes_keep_legacy_behaviour(self):
        """record_* without a token still applies regardless of staleness."""
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.record_success()  # tokenless: unconditional close
        assert breaker.state == CLOSED

    def test_callback_may_read_state_without_deadlocking(self):
        """Transitions fire outside the lock, so a callback can re-enter."""
        clock = FakeClock()
        observed = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout_s=1.0,
            clock=clock,
            on_state_change=lambda _s: observed.append(breaker.state),
        )
        breaker.before_call()
        breaker.record_failure()
        clock.advance(1.0)
        token = breaker.before_call()
        breaker.record_success(token)
        assert observed  # callbacks ran and read state re-entrantly
        assert breaker.state == CLOSED

    def test_bind_clock_rebinds_the_cooldown_source(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
        clock = FakeClock()
        breaker.bind_clock(clock)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)  # only the injected clock moves
        assert breaker.state == HALF_OPEN


class TestSingleClockContract:
    """One monotonic clock across service, batcher, breaker, loadgen.

    The regression: the breaker used to hold its own ``time.monotonic``
    while a test-injected service clock drove deadlines, so cooldowns
    and deadlines drifted apart under a fake clock. Now the service
    rebinds default-clocked breakers and the load generator reads the
    service clock, making time fully controllable.
    """

    def test_service_rebinds_default_clocked_breaker(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=3.0)
        service = InferenceService(
            _Scorer(), clock=clock, circuit_breaker=breaker
        )
        assert breaker._clock is clock
        assert service.clock is clock

    def test_explicitly_clocked_breaker_is_left_alone(self):
        service_clock = FakeClock()
        breaker_clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=3.0, clock=breaker_clock
        )
        InferenceService(_Scorer(), clock=service_clock, circuit_breaker=breaker)
        assert breaker._clock is breaker_clock

    def test_mixed_time_sources_converge_on_the_fake_clock(self):
        """Deadline expiry and breaker cooldown obey one injected clock."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=100.0)

        class DownOnce:
            model_id = "down-once"
            cacheable = True
            calls = 0

            def decision_function(self, matrix):
                type(self).calls += 1
                if type(self).calls == 1:
                    raise TransientScorerError("first call down")
                return np.asarray(matrix)[:, 0]

        service = InferenceService(
            DownOnce(),
            max_batch_size=2,
            max_wait_ms=0.0,
            clock=clock,
            circuit_breaker=breaker,
        )
        with service:
            with pytest.raises(TransientScorerError):
                service.score(np.zeros(2), timeout_s=50.0)
            assert breaker.state == OPEN
            # wall time passes (the worker thread runs) but the fake
            # clock hasn't moved: the breaker must still be open, and a
            # 50 s deadline must not expire.
            with pytest.raises(CircuitOpenError):
                service.score(np.zeros(2), timeout_s=50.0)
            clock.advance(100.0)  # cooldown elapses on the fake clock
            assert breaker.state == HALF_OPEN
            assert service.score(np.ones(2), timeout_s=50.0) == 1.0

    def test_loadgen_reads_the_service_clock(self):
        from repro.serve import closed_loop

        clock = FakeClock()

        class AdvancesClock:
            model_id = "tick"
            cacheable = False

            def decision_function(self, matrix):
                clock.advance(2.0)  # simulated scoring time
                return np.asarray(matrix)[:, 0]

        service = InferenceService(
            AdvancesClock(), max_batch_size=64, max_wait_ms=0.0, clock=clock
        )
        rows = np.ones((6, 2))
        with service:
            report = closed_loop(service, rows, concurrency=1, chunk_size=6)
        assert report.accounted
        # seconds came from the fake clock (advanced only by the model),
        # not from wall time, proving loadgen shares the service clock.
        assert report.seconds >= 2.0
        assert report.seconds == clock.now


class TestFlakyModel:
    def test_deterministic_failure_sequence(self):
        base = lambda m: np.asarray(m)[:, 0]  # noqa: E731
        seqs = []
        for _ in range(2):
            flaky = FlakyModel(base, failure_rate=0.5, rng=42)
            seq = []
            for _ in range(16):
                try:
                    flaky.decision_function(np.ones((1, 1)))
                    seq.append(True)
                except TransientScorerError:
                    seq.append(False)
            seqs.append(tuple(seq))
        assert seqs[0] == seqs[1]
        assert flaky.calls == 16
        assert flaky.failures == seqs[1].count(False)

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FlakyModel(lambda m: m, failure_rate=1.5)

    def test_passthrough_identity(self):
        class Model:
            model_id = "m-1"
            cacheable = False

            def decision_function(self, m):
                return np.zeros(len(m))

        flaky = FlakyModel(Model(), failure_rate=0.0)
        assert flaky.model_id == "m-1"
        assert flaky.cacheable is False
        np.testing.assert_array_equal(
            flaky.decision_function(np.ones((2, 1))), [0.0, 0.0]
        )


class _Scorer:
    """Minimal healthy scorer for service-level tests."""

    model_id = "resilience-test"
    cacheable = True

    def decision_function(self, matrix):
        return np.asarray(matrix)[:, 0] * 10.0


class TestServiceIntegration:
    def test_service_retries_through_transient_faults(self):
        flaky = FlakyModel(_Scorer(), failure_rate=0.5, rng=3)
        service = InferenceService(
            flaky,
            max_batch_size=4,
            max_wait_ms=1.0,
            cache_capacity=0,
            retry_policy=RetryPolicy(max_attempts=6, backoff_ms=0.1),
        )
        with service:
            scores = [
                service.score(np.full(3, i, dtype=float), timeout_s=5.0)
                for i in range(6)
            ]
        assert scores == [i * 10.0 for i in range(6)]
        assert flaky.failures > 0

    def test_degraded_value_served_while_breaker_open(self):
        class AlwaysDown:
            model_id = "down"
            cacheable = True

            def decision_function(self, matrix):
                raise TransientScorerError("permanently sad")

        service = InferenceService(
            AlwaysDown(),
            max_batch_size=4,
            max_wait_ms=1.0,
            circuit_breaker=CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0),
            degraded_value=-1.0,
        )
        with service:
            scores = [
                service.score(np.full(2, i, dtype=float), timeout_s=5.0)
                for i in range(4)
            ]
            snapshot = service.stats.snapshot()
        assert scores == [-1.0] * 4
        assert snapshot["counters"]["degraded"] == 4

    def test_degraded_results_never_cached(self):
        class DownThenUp:
            model_id = "flap"
            cacheable = True

            def __init__(self):
                self.down = True

            def decision_function(self, matrix):
                if self.down:
                    raise TransientScorerError("down")
                return np.asarray(matrix)[:, 0] * 10.0

        model = DownThenUp()
        service = InferenceService(
            model,
            max_batch_size=4,
            max_wait_ms=1.0,
            cache_capacity=64,
            degraded_value=0.0,
        )
        row = np.array([7.0, 7.0])
        with service:
            degraded = service.score(row, timeout_s=5.0)
            model.down = False
            healthy = service.score(row, timeout_s=5.0)
        assert degraded == 0.0
        assert healthy == 70.0  # a cached degraded score would repeat 0.0

    def test_no_degraded_value_fails_requests(self):
        class AlwaysDown:
            model_id = "down2"
            cacheable = True

            def decision_function(self, matrix):
                raise TransientScorerError("sad")

        service = InferenceService(AlwaysDown(), max_batch_size=2, max_wait_ms=1.0)
        with service:
            with pytest.raises(TransientScorerError):
                service.score(np.zeros(2), timeout_s=5.0)

    def test_breaker_gauge_published(self):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0)

        class AlwaysDown:
            model_id = "down3"
            cacheable = True

            def decision_function(self, matrix):
                raise TransientScorerError("sad")

        service = InferenceService(
            AlwaysDown(),
            max_batch_size=2,
            max_wait_ms=1.0,
            registry=registry,
            circuit_breaker=breaker,
            degraded_value=0.0,
        )
        with service:
            service.score(np.zeros(2), timeout_s=5.0)
        gauges = registry.snapshot()["gauges"]
        assert gauges["serve_breaker_state"] == 2.0  # open
