"""Unit tests for the ``repro.obs`` metric primitives and registry."""

import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DROPPED_SERIES_COUNTER,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    diff_states,
    escape_label_value,
    get_registry,
    normalize_labels,
    parse_prometheus,
    parse_sample_name,
    render_labels,
    sanitize_metric_name,
    set_registry,
    unescape_label_value,
)


class TestCounter:
    def test_increments(self):
        counter = CounterMetric("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CounterMetric("c").inc(-1)

    def test_concurrent_increments_lose_nothing(self):
        counter = CounterMetric("c")
        n_threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread


class TestGauge:
    def test_set_and_read(self):
        gauge = GaugeMetric("g")
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_callback_read_live(self):
        box = {"v": 1}
        gauge = GaugeMetric("g", fn=lambda: box["v"])
        assert gauge.value == 1
        box["v"] = 7
        assert gauge.value == 7

    def test_failing_callback_reads_nan(self):
        def boom():
            raise RuntimeError("gone")

        gauge = GaugeMetric("g", fn=boom)
        assert math.isnan(gauge.value)


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        hist = HistogramMetric("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 5.0
        assert snap["min"] == 0.5
        assert snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(5.0 / 3)

    def test_buckets_cumulative_upper_inclusive(self):
        hist = HistogramMetric("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 9.0):
            hist.observe(v)
        buckets = hist.snapshot()["buckets"]
        assert buckets["1.0"] == 2  # 0.5 and the exactly-1.0 observation
        assert buckets["2.0"] == 4
        assert buckets["+Inf"] == 5

    def test_percentiles_from_reservoir(self):
        hist = HistogramMetric("h")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.snapshot()["p99"] == pytest.approx(99.01)

    def test_reservoir_bounded(self):
        hist = HistogramMetric("h", reservoir=4)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.percentile(0) >= 96.0  # only the tail is retained

    def test_value_counts_only_when_tracked(self):
        plain = HistogramMetric("h")
        plain.observe(2)
        assert plain.value_counts() == {}
        tracked = HistogramMetric("h", track_values=True)
        tracked.observe(2)
        tracked.observe(2)
        tracked.observe(8)
        assert tracked.value_counts() == {2: 2, 8: 1}

    def test_rejects_bad_reservoir_and_duplicate_buckets(self):
        with pytest.raises(ValueError):
            HistogramMetric("h", reservoir=0)
        with pytest.raises(ValueError):
            HistogramMetric("h", buckets=(1.0, 1.0))

    def test_empty_snapshot_is_finite(self):
        snap = HistogramMetric("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        assert snap["p50"] == 0.0 and snap["p99"] == 0.0


class TestRegistry:
    def test_get_or_create_shares_instances(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_illegal_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name!")

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("pyramid.level") == "pyramid_level"
        assert sanitize_metric_name("a b/c") == "a_b_c"

    def test_snapshot_covers_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.1)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.counter("serve_a_total").inc()
        registry.counter("sim_b_total").inc(3)
        assert registry.counters_with_prefix("serve_") == {"serve_a_total": 1}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.names() == []

    def test_lazy_creation_under_concurrency_is_single_instance(self):
        registry = MetricsRegistry()
        seen = []

        def worker():
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(metric is seen[0] for metric in seen)


class TestExposition:
    def test_roundtrip_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="requests").inc(7)
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        samples = parse_prometheus(registry.render_prometheus())
        assert samples["requests_total"] == 7
        assert samples["depth"] == 2
        assert samples['lat_bucket{le="0.1"}'] == 1
        assert samples['lat_bucket{le="+Inf"}'] == 1
        assert samples["lat_count"] == 1
        assert samples["lat_sum"] == pytest.approx(0.05)

    def test_every_sample_is_numeric(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        for value in parse_prometheus(registry.render_prometheus()).values():
            assert isinstance(value, float) or isinstance(value, int)

    def test_parser_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            parse_prometheus("metric_a not_a_number")


class TestLabelEscaping:
    """Label values must survive the exposition text format verbatim."""

    @pytest.mark.parametrize(
        "value",
        [
            "",
            "plain",
            'quo"te',
            "back\\slash",
            "new\nline",
            '\\"\n mixed \\\\ "" \n\n',
            'trailing backslash \\',
        ],
    )
    def test_escape_unescape_roundtrip(self, value):
        escaped = escape_label_value(value)
        assert "\n" not in escaped
        assert unescape_label_value(escaped) == value

    def test_unknown_escapes_preserved(self):
        # Reference-parser behavior: \t is not an escape, keep it as-is.
        assert unescape_label_value("a\\tb") == "a\\tb"

    def test_sample_name_roundtrip(self):
        labels = normalize_labels({"core": 'we"ird\n\\value', "lane": "3"})
        sample = "hw_core_spikes_total" + render_labels(labels)
        base, parsed = parse_sample_name(sample)
        assert base == "hw_core_spikes_total"
        assert parsed == {"core": 'we"ird\n\\value', "lane": "3"}

    def test_labeled_series_roundtrip_through_exposition(self):
        registry = MetricsRegistry()
        registry.counter(
            "hw_core_spikes_total", labels={"core": 'c"0\n\\'}
        ).inc(7)
        text = registry.render_prometheus()
        # The raw newline must leave as the two-char escape, keeping
        # every exposition sample on a single line.
        assert '\\n' in text and 'c\\"0' in text
        samples = parse_prometheus(text)
        (sample_id,) = [k for k in samples if k.startswith("hw_core")]
        base, labels = parse_sample_name(sample_id)
        assert labels == {"core": 'c"0\n\\'}
        assert samples[sample_id] == 7

    @settings(max_examples=200, deadline=None)
    @given(value=st.text())
    def test_property_roundtrip_any_text(self, value):
        assert unescape_label_value(escape_label_value(value)) == value
        sample = "m" + render_labels(normalize_labels({"l": value}))
        base, labels = parse_sample_name(sample)
        assert base == "m"
        assert labels == {"l": value}

    def test_illegal_label_name_rejected(self):
        with pytest.raises(ValueError, match="label name"):
            normalize_labels({"bad-name": "x"})


class TestCardinalityGuard:
    def test_series_capped_and_drops_counted(self):
        registry = MetricsRegistry(max_label_sets=3)
        for i in range(5):
            registry.counter("hot", labels={"shard": str(i)}).inc()
        exposed = [
            k
            for k in parse_prometheus(registry.render_prometheus())
            if k.startswith("hot")
        ]
        assert len(exposed) == 3
        assert registry.get(DROPPED_SERIES_COUNTER).value == 2

    def test_detached_metric_usable_but_unregistered(self):
        registry = MetricsRegistry(max_label_sets=1)
        registry.counter("m", labels={"a": "1"}).inc()
        overflow = registry.counter("m", labels={"a": "2"})
        overflow.inc(99)  # must not raise ...
        assert overflow.value == 99
        # ... and must not appear in the registry.
        assert registry.get("m", labels={"a": "2"}) is None

    def test_existing_series_unaffected_by_cap(self):
        registry = MetricsRegistry(max_label_sets=2)
        first = registry.counter("m", labels={"a": "1"})
        registry.counter("m", labels={"a": "2"})
        registry.counter("m", labels={"a": "3"})  # dropped
        assert registry.counter("m", labels={"a": "1"}) is first

    def test_validation(self):
        with pytest.raises(ValueError, match="max_label_sets"):
            MetricsRegistry(max_label_sets=0)


class TestPercentileEdges:
    def test_out_of_range_q_clamps_to_min_max(self):
        histogram = HistogramMetric("h", buckets=(1.0,))
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.percentile(-50.0) == 1.0
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(100.0) == 3.0
        assert histogram.percentile(9999.0) == 3.0

    def test_never_nan(self):
        histogram = HistogramMetric("h", buckets=(1.0,))
        assert histogram.percentile(50.0) == 0.0  # empty reservoir
        histogram.observe(5.0)
        for q in (-1e9, -1.0, 0.0, 50.0, 100.0, 1e9):
            assert not math.isnan(histogram.percentile(q))

    def test_nan_q_rejected(self):
        histogram = HistogramMetric("h", buckets=(1.0,))
        histogram.observe(1.0)
        with pytest.raises(ValueError, match="NaN"):
            histogram.percentile(float("nan"))

    def test_reservoir_p99_matches_exact(self):
        """Reservoir-backed p99 == numpy's exact p99 while it all fits."""
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=1500)
        histogram = HistogramMetric("h", buckets=(1.0,), reservoir=2048)
        for value in values:
            histogram.observe(float(value))
        for q in (50.0, 90.0, 99.0):
            assert histogram.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    def test_window_reservoir_tracks_recent_values(self):
        histogram = HistogramMetric("h", buckets=(1.0,), reservoir=100)
        for value in range(1000):
            histogram.observe(float(value))
        # Only the most recent 100 observations remain.
        assert histogram.percentile(0.0) == 900.0
        assert histogram.percentile(100.0) == 999.0


class TestProcessRegistry:
    def test_set_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_set_registry_type_checked(self):
        with pytest.raises(TypeError):
            set_registry(object())


class TestStateShipping:
    """export_state / diff_states / merge_state — the worker wire format."""

    def _source(self):
        registry = MetricsRegistry()
        registry.counter("engine_runs_total", help="runs").inc(3)
        registry.gauge("serve_queue_depth").set(7.0)
        hist = registry.histogram(
            "serve_latency_seconds", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5):
            hist.observe(value)
        registry.counter(
            "serve_hw_router_hops_total", labels={"chip": "0"}
        ).inc(42)
        return registry

    def test_export_merge_round_trip(self):
        source = self._source()
        destination = MetricsRegistry()
        merged = destination.merge_state(source.export_state())
        assert merged == 4
        assert destination.render_prometheus() == source.render_prometheus()

    def test_merge_applies_extra_labels(self):
        source = self._source()
        destination = MetricsRegistry()
        destination.merge_state(source.export_state(), extra_labels={"shard": "2"})
        assert (
            destination.get("engine_runs_total", labels={"shard": "2"}).value
            == 3
        )
        relabeled = destination.get(
            "serve_hw_router_hops_total", labels={"chip": "0", "shard": "2"}
        )
        assert relabeled is not None and relabeled.value == 42
        # original label sets are not present without the extra label
        assert destination.get("engine_runs_total") is None

    def test_diff_omits_unchanged_series(self):
        source = self._source()
        before = source.export_state()
        delta = diff_states(source.export_state(), before)
        assert delta["series"] == []

    def test_diff_carries_only_the_increment(self):
        source = self._source()
        before = source.export_state()
        source.counter("engine_runs_total").inc(2)
        source.histogram(
            "serve_latency_seconds", buckets=(0.01, 0.1, 1.0)
        ).observe(0.02)
        delta = diff_states(source.export_state(), before)
        by_name = {record["name"]: record for record in delta["series"]}
        assert set(by_name) == {"engine_runs_total", "serve_latency_seconds"}
        assert by_name["engine_runs_total"]["value"] == 2
        hist_delta = by_name["serve_latency_seconds"]["state"]
        assert hist_delta["count"] == 1
        assert hist_delta["reservoir"] == [0.02]
        assert hist_delta["bucket_counts"] == [0, 1, 0, 0]  # + overflow

    def test_gauge_ships_absolute_value_on_change(self):
        source = self._source()
        before = source.export_state()
        source.gauge("serve_queue_depth").set(1.0)
        delta = diff_states(source.export_state(), before)
        (record,) = delta["series"]
        assert record["kind"] == "gauge" and record["value"] == 1.0

    def test_incremental_deltas_reproduce_final_state(self):
        """Merging every delta in order == merging the final state once."""
        source = self._source()
        shipped = source.export_state()
        incremental = MetricsRegistry()
        incremental.merge_state(diff_states(shipped, {"series": []}))
        for round_values in ((0.002, 0.3), (0.07,)):
            for value in round_values:
                source.histogram(
                    "serve_latency_seconds", buckets=(0.01, 0.1, 1.0)
                ).observe(value)
                source.counter("engine_runs_total").inc()
            state = source.export_state()
            incremental.merge_state(diff_states(state, shipped))
            shipped = state
        oneshot = MetricsRegistry()
        oneshot.merge_state(source.export_state())
        assert (
            incremental.render_prometheus() == oneshot.render_prometheus()
        )

    def test_histogram_merge_adds_buckets_and_folds_extrema(self):
        left = HistogramMetric("h_seconds", buckets=(1.0, 10.0))
        right = HistogramMetric("h_seconds", buckets=(1.0, 10.0))
        for value in (0.5, 5.0):
            left.observe(value)
        for value in (20.0, 0.1):
            right.observe(value)
        left.merge_state(right.export_state())
        snap = left.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 0.1 and snap["max"] == 20.0
        assert snap["buckets"] == {"1.0": 2, "10.0": 3, "+Inf": 4}

    def test_histogram_merge_rejects_mismatched_bounds(self):
        left = HistogramMetric("h_seconds", buckets=(1.0, 10.0))
        right = HistogramMetric("h_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bounds"):
            left.merge_state(right.export_state())

    def test_empty_histogram_merge_keeps_extrema_untouched(self):
        left = HistogramMetric("h_seconds", buckets=(1.0,))
        left.observe(0.25)
        empty = HistogramMetric("h_seconds", buckets=(1.0,))
        left.merge_state(empty.export_state())
        snap = left.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == 0.25 and snap["max"] == 0.25

    def test_merge_respects_the_cardinality_guard(self):
        source = MetricsRegistry()
        source.counter("hot_total").inc(5)
        destination = MetricsRegistry(max_label_sets=2)
        state = source.export_state()
        for shard in range(4):
            destination.merge_state(state, extra_labels={"shard": str(shard)})
        exposed = [
            name
            for name in parse_prometheus(destination.render_prometheus())
            if name.startswith("hot_total")
        ]
        assert len(exposed) == 2
        assert destination.get(DROPPED_SERIES_COUNTER).value == 2

    def test_round_trip_under_concurrency(self):
        """8 writer threads + live delta shipping lose no updates."""
        source = MetricsRegistry()
        destination = MetricsRegistry()
        stop = threading.Event()
        per_thread, threads_n = 400, 8

        def writer(index):
            counter = source.counter("engine_runs_total")
            hist = source.histogram(
                "serve_latency_seconds", buckets=(0.01, 0.1, 1.0)
            )
            labeled = source.counter(
                "serve_hw_router_hops_total", labels={"chip": str(index % 2)}
            )
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.5)
                labeled.inc(2)

        workers = [
            threading.Thread(target=writer, args=(i,))
            for i in range(threads_n)
        ]
        shipped = {"series": []}
        for worker in workers:
            worker.start()
        try:
            # ship deltas concurrently with the writers, like a worker
            # shipping after every batch
            while any(worker.is_alive() for worker in workers):
                state = source.export_state()
                destination.merge_state(
                    diff_states(state, shipped), extra_labels={"shard": "0"}
                )
                shipped = state
        finally:
            stop.set()
            for worker in workers:
                worker.join()
        state = source.export_state()
        destination.merge_state(
            diff_states(state, shipped), extra_labels={"shard": "0"}
        )
        total = threads_n * per_thread
        assert (
            destination.get("engine_runs_total", labels={"shard": "0"}).value
            == total
        )
        merged_hist = destination.get(
            "serve_latency_seconds", labels={"shard": "0"}
        )
        snap = merged_hist.snapshot()
        assert snap["count"] == total
        assert snap["sum"] == pytest.approx(total * 0.5)
        assert snap["buckets"]["1.0"] == total
        hops = sum(
            destination.get(
                "serve_hw_router_hops_total",
                labels={"chip": str(chip), "shard": "0"},
            ).value
            for chip in (0, 1)
        )
        assert hops == total * 2
