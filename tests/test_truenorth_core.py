"""Tests for the neurosynaptic core model."""

import numpy as np
import pytest

from repro.truenorth.core import NeurosynapticCore
from repro.truenorth.types import (
    CORE_AXONS,
    CORE_NEURONS,
    NeuronParameters,
    ResetMode,
)


def _spikes(*active):
    vector = np.zeros(CORE_AXONS, dtype=bool)
    for axon in active:
        vector[axon] = True
    return vector


class TestConfiguration:
    def test_axon_type_bounds(self):
        core = NeurosynapticCore(0)
        with pytest.raises(ValueError):
            core.set_axon_type(0, 4)
        with pytest.raises(ValueError):
            core.set_axon_type(256, 0)

    def test_neuron_bounds(self):
        core = NeurosynapticCore(0)
        with pytest.raises(ValueError):
            core.set_neuron(256, NeuronParameters())

    def test_crossbar_shape_enforced(self):
        core = NeurosynapticCore(0)
        with pytest.raises(ValueError):
            core.set_crossbar(np.zeros((10, 10)))

    def test_negative_core_id_rejected(self):
        with pytest.raises(ValueError):
            NeurosynapticCore(-1)

    def test_effective_weights_use_lut_and_types(self):
        core = NeurosynapticCore(0)
        core.set_axon_type(0, 0)
        core.set_axon_type(1, 1)
        core.set_neuron(0, NeuronParameters(weights=(2, -3, 0, 0)))
        core.connect(0, 0)
        core.connect(1, 0)
        effective = core.effective_weights()
        assert effective[0, 0] == 2
        assert effective[1, 0] == -3
        assert effective[2, 0] == 0

    def test_effective_weights_cache_invalidation(self):
        core = NeurosynapticCore(0)
        core.set_neuron(0, NeuronParameters(weights=(1, 0, 0, 0)))
        core.connect(0, 0)
        assert core.effective_weights()[0, 0] == 1
        core.set_neuron(0, NeuronParameters(weights=(5, 0, 0, 0)))
        assert core.effective_weights()[0, 0] == 5


class TestDynamics:
    def test_integration_and_threshold(self):
        core = NeurosynapticCore(0)
        core.set_neuron(0, NeuronParameters(weights=(1, 0, 0, 0), threshold=3))
        core.connect(0, 0)
        fired = [core.tick(_spikes(0))[0] for _ in range(3)]
        assert fired == [False, False, True]

    def test_linear_reset_keeps_excess(self):
        core = NeurosynapticCore(0)
        core.set_neuron(
            0,
            NeuronParameters(
                weights=(5, 0, 0, 0), threshold=3, reset_mode=ResetMode.LINEAR
            ),
        )
        core.connect(0, 0)
        assert core.tick(_spikes(0))[0]
        assert core.potentials[0] == 2  # 5 - 3

    def test_hard_reset_to_reset_potential(self):
        core = NeurosynapticCore(0)
        core.set_neuron(
            0,
            NeuronParameters(
                weights=(5, 0, 0, 0),
                threshold=3,
                reset_mode=ResetMode.RESET,
                reset_potential=1,
            ),
        )
        core.connect(0, 0)
        core.tick(_spikes(0))
        assert core.potentials[0] == 1

    def test_no_reset_keeps_firing(self):
        core = NeurosynapticCore(0)
        core.set_neuron(
            0,
            NeuronParameters(
                weights=(2, 0, 0, 0), threshold=1, reset_mode=ResetMode.NONE, floor=100
            ),
        )
        core.connect(0, 0)
        assert core.tick(_spikes(0))[0]
        assert core.tick(np.zeros(CORE_AXONS, dtype=bool))[0]  # potential persists

    def test_leak_is_applied_every_tick(self):
        core = NeurosynapticCore(0)
        core.set_neuron(0, NeuronParameters(weights=(0, 0, 0, 0), leak=2, threshold=5))
        fired = [core.tick(np.zeros(CORE_AXONS, dtype=bool))[0] for _ in range(4)]
        assert fired == [False, False, True, False]

    def test_floor_saturation(self):
        core = NeurosynapticCore(0)
        core.set_axon_type(0, 1)
        core.set_neuron(0, NeuronParameters(weights=(1, -10, 0, 0), floor=3))
        core.connect(0, 0)
        core.tick(_spikes(0))
        assert core.potentials[0] == -3

    def test_inner_product_across_axons(self):
        core = NeurosynapticCore(0)
        for axon in range(4):
            core.set_axon_type(axon, 0)
            core.connect(axon, 0)
        core.set_neuron(0, NeuronParameters(weights=(1, 0, 0, 0), threshold=4))
        assert core.tick(_spikes(0, 1, 2, 3))[0]

    def test_unconnected_axons_do_nothing(self):
        core = NeurosynapticCore(0)
        core.set_neuron(0, NeuronParameters(weights=(9, 9, 9, 9), threshold=1))
        assert not core.tick(_spikes(5, 6, 7))[0]

    def test_stochastic_threshold_varies(self):
        core = NeurosynapticCore(0)
        core.set_neuron(
            0,
            NeuronParameters(
                weights=(4, 0, 0, 0), threshold=1, stochastic_threshold_bits=3
            ),
        )
        core.connect(0, 0)
        rng = np.random.default_rng(0)
        outcomes = set()
        for _ in range(50):
            core.reset_state()
            outcomes.add(bool(core.tick(_spikes(0), rng=rng)[0]))
        assert outcomes == {True, False}

    def test_input_shape_validated(self):
        core = NeurosynapticCore(0)
        with pytest.raises(ValueError):
            core.tick(np.zeros(10, dtype=bool))

    def test_reset_state_zeroes_potentials(self):
        core = NeurosynapticCore(0)
        core.set_neuron(0, NeuronParameters(weights=(1, 0, 0, 0), threshold=10))
        core.connect(0, 0)
        core.tick(_spikes(0))
        core.reset_state()
        assert core.potentials[0] == 0
