"""Tests for the synthetic pedestrian dataset."""

import numpy as np
import pytest

from repro.datasets import DatasetConfig, SyntheticPersonDataset
from repro.datasets.synthetic_person import (
    WINDOW_HEIGHT,
    WINDOW_WIDTH,
    _person_mask,
    _overlap,
)


class TestPersonMask:
    def test_shape_and_range(self, rng):
        mask = _person_mask(96, rng)
        assert mask.shape[0] == 96
        assert 0.0 <= mask.min() and mask.max() <= 1.0

    def test_has_head_and_legs(self, rng):
        mask = _person_mask(100, rng)
        assert mask[:20].sum() > 0  # head region
        assert mask[80:].sum() > 0  # feet region

    def test_roughly_vertical_symmetric_mass(self, rng):
        mask = _person_mask(100, rng)
        width = mask.shape[1]
        left = mask[:, : width // 2].sum()
        right = mask[:, width - width // 2 :].sum()
        assert abs(left - right) / max(left + right, 1) < 0.3


class TestWindows:
    def test_positive_window_shape(self, small_dataset):
        window = small_dataset.positive_window()
        assert window.shape == (WINDOW_HEIGHT, WINDOW_WIDTH)
        assert 0.0 <= window.min() and window.max() <= 1.0

    def test_positive_windows_stack(self, small_dataset):
        windows = small_dataset.positive_windows(3)
        assert windows.shape == (3, WINDOW_HEIGHT, WINDOW_WIDTH)

    def test_zero_count(self, small_dataset):
        assert small_dataset.positive_windows(0).shape[0] == 0

    def test_negative_windows(self, small_dataset):
        windows = small_dataset.negative_windows(5)
        assert windows.shape == (5, WINDOW_HEIGHT, WINDOW_WIDTH)

    def test_positive_window_has_central_structure(self, small_dataset):
        """The central strip (person) differs from the margins."""
        windows = small_dataset.positive_windows(5)
        center = windows[:, 32:96, 16:48].std(axis=(1, 2))
        assert (center > 0.02).all()

    def test_negative_count_validated(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.positive_windows(-1)


class TestScenes:
    def test_scene_annotations_within_reach(self):
        dataset = SyntheticPersonDataset(rng=5)
        scenes = dataset.test_scenes(10, (200, 260), max_people=2)
        for scene in scenes:
            assert scene.image.shape == (200, 260)
            for annotation in scene.annotations:
                assert annotation.height >= 120  # at least ~window size
                assert annotation.height <= 200  # within pyramid reach

    def test_annotation_aspect_matches_window(self):
        dataset = SyntheticPersonDataset(rng=6)
        scenes = dataset.test_scenes(8, (220, 220), max_people=1)
        for scene in scenes:
            for annotation in scene.annotations:
                aspect = annotation.width / annotation.height
                assert np.isclose(aspect, WINDOW_WIDTH / WINDOW_HEIGHT, atol=0.01)

    def test_negative_images_have_no_annotations(self):
        dataset = SyntheticPersonDataset(rng=7)
        image = dataset.negative_image((100, 140))
        assert image.shape == (100, 140)

    def test_reproducibility(self):
        a = SyntheticPersonDataset(rng=9).positive_window()
        b = SyntheticPersonDataset(rng=9).positive_window()
        assert np.array_equal(a, b)

    def test_max_people_zero(self):
        dataset = SyntheticPersonDataset(rng=10)
        scene = dataset.test_scene((150, 150), max_people=0)
        assert scene.annotations == []

    def test_negative_max_people_rejected(self):
        with pytest.raises(ValueError):
            SyntheticPersonDataset(rng=0).test_scene(max_people=-1)

    def test_scenes_value_range(self):
        dataset = SyntheticPersonDataset(rng=11)
        scene = dataset.test_scene((160, 160), max_people=2)
        assert 0.0 <= scene.image.min() and scene.image.max() <= 1.0


class TestOverlap:
    def test_identical_boxes(self):
        assert _overlap((0, 0, 10, 10), (0, 0, 10, 10)) == 1.0

    def test_disjoint(self):
        assert _overlap((0, 0, 10, 10), (20, 20, 5, 5)) == 0.0

    def test_partial(self):
        iou = _overlap((0, 0, 10, 10), (5, 0, 10, 10))
        assert np.isclose(iou, 50 / 150)


class TestConfig:
    def test_config_affects_clutter(self):
        quiet = SyntheticPersonDataset(
            DatasetConfig(clutter_poles=0.0, clutter_blobs=0.0), rng=3
        )
        image = quiet.negative_image((80, 80))
        assert image.std() < 0.25
