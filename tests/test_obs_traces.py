"""Per-request trace assembly and Chrome trace-event export.

Stitching flat span/flight streams (possibly minted in different
processes) into per-request trees, batch-span multi-ownership via the
``trace_ids`` attr, the Chrome trace-event document shape, and the
video frame stage breakdown.
"""

import json
import os

import pytest

from repro.obs import MetricsRegistry, span, trace_context, trace_log
from repro.obs.flight import FlightEvent, flight_recorder
from repro.obs.tracing import SpanRecord
from repro.obs.traces import (
    VIDEO_STAGE_METRIC,
    RequestTrace,
    assemble_traces,
    export_chrome_trace,
    frame_stage_breakdown,
    to_chrome_trace,
    validate_chrome_trace,
)


def _record(name, trace_id="", span_id="", parent_id="", pid=0, **attrs):
    return SpanRecord(
        name=name,
        path=name,
        duration_s=0.001,
        depth=0,
        thread="t",
        attrs=attrs,
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        start_ts=100.0,
        pid=pid or os.getpid(),
    )


def _event(kind, trace_id="", seq=0, **attrs):
    return FlightEvent(
        seq=seq, ts=100.0, kind=kind, trace_id=trace_id, thread="t",
        attrs=attrs,
    )


@pytest.fixture(autouse=True)
def clean_obs_state():
    trace_log().clear()
    flight_recorder().clear()
    yield
    trace_log().clear()
    flight_recorder().clear()


class TestAssembly:
    def test_spans_group_by_own_trace_id(self):
        spans = [
            _record("a", trace_id="t1", span_id="s1"),
            _record("b", trace_id="t2", span_id="s2"),
            _record("c", trace_id="t1", span_id="s3", parent_id="s1"),
        ]
        traces = assemble_traces(spans=spans, events=[])
        assert [t.trace_id for t in traces] == ["t1", "t2"]
        assert [r.name for r in traces[0].spans] == ["a", "c"]

    def test_batch_spans_claimed_by_every_listed_trace(self):
        batch = _record("batch", span_id="sb", trace_ids=["t1", "t2"])
        traces = assemble_traces(spans=[batch], events=[])
        assert {t.trace_id for t in traces} == {"t1", "t2"}
        assert all(t.spans == [batch] for t in traces)

    def test_events_attach_to_their_trace(self):
        spans = [_record("a", trace_id="t1", span_id="s1")]
        events = [
            _event("enqueue", trace_id="t1", seq=0),
            _event("batch_form", seq=1, trace_ids=["t1"]),
            _event("unrelated", trace_id="t9", seq=2),
        ]
        (t1, t9) = assemble_traces(spans=spans, events=events)
        assert [e.kind for e in t1.events] == ["enqueue", "batch_form"]
        assert t9.trace_id == "t9"

    def test_unowned_records_are_dropped(self):
        traces = assemble_traces(spans=[_record("anon")], events=[])
        assert traces == []

    def test_defaults_read_the_process_log(self):
        with trace_context("t-live"):
            with span("live.work"):
                pass
        traces = assemble_traces()
        assert any(
            t.trace_id == "t-live" and t.spans[0].name == "live.work"
            for t in traces
        )


class TestSpanTree:
    def test_tree_follows_parent_ids_across_pids(self):
        """The cross-process edge: a worker-pid span parented under a
        dispatcher-pid span lands as its child in the tree."""
        parent = _record(
            "execute", span_id="sp", trace_ids=["t1"], pid=1000
        )
        child = _record(
            "score", trace_id="t1", span_id="sc", parent_id="sp", pid=2000
        )
        (trace,) = assemble_traces(spans=[parent, child], events=[])
        assert trace.pids == (1000, 2000)
        (root,) = trace.roots()
        assert root.name == "execute"
        (tree,) = trace.span_tree()
        assert tree["name"] == "execute" and tree["pid"] == 1000
        (subtree,) = tree["children"]
        assert subtree["name"] == "score" and subtree["pid"] == 2000

    def test_orphans_become_roots(self):
        orphan = _record(
            "score", trace_id="t1", span_id="sc", parent_id="missing"
        )
        (trace,) = assemble_traces(spans=[orphan], events=[])
        assert trace.roots() == [orphan]


class TestChromeExport:
    def _trace(self):
        return RequestTrace(
            trace_id="t1",
            spans=[
                _record("execute", span_id="sp", trace_ids=["t1"], pid=os.getpid()),
                _record("score", trace_id="t1", span_id="sc", parent_id="sp",
                        pid=os.getpid() + 1),
            ],
            events=[_event("enqueue", trace_id="t1", seq=5)],
        )

    def test_document_shape_validates(self):
        document = to_chrome_trace([self._trace()])
        validate_chrome_trace(document)
        phases = [e["ph"] for e in document["traceEvents"]]
        assert phases.count("X") == 2 and phases.count("i") == 1
        assert "M" in phases  # process/thread metadata present

    def test_worker_processes_are_named(self):
        document = to_chrome_trace([self._trace()])
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any("serve parent" in n for n in names)
        assert any("shard worker" in n for n in names)

    def test_shared_batch_spans_emitted_once(self):
        batch = _record("batch", span_id="sb", trace_ids=["t1", "t2"])
        traces = assemble_traces(spans=[batch], events=[])
        document = to_chrome_trace(traces)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 1

    def test_timestamps_are_microseconds(self):
        document = to_chrome_trace([self._trace()])
        (x, _) = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert x["ts"] == pytest.approx(100.0 * 1e6)
        assert x["dur"] == pytest.approx(0.001 * 1e6)

    def test_validation_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="list"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace({"traceEvents": [{"ph": "?"}]})
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0}
                    ]
                }
            )

    def test_export_writes_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(str(path), [self._trace()])
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        assert count == len(document["traceEvents"]) > 0


class TestFrameStageBreakdown:
    def test_reads_labeled_stage_histograms(self):
        registry = MetricsRegistry()
        for stage, level, value in (
            ("extract", "0", 0.010),
            ("extract", "0", 0.030),
            ("serve", "1", 0.200),
        ):
            registry.histogram(
                VIDEO_STAGE_METRIC, labels={"stage": stage, "level": level}
            ).observe(value)
        breakdown = frame_stage_breakdown(registry)
        assert set(breakdown) == {"extract", "serve"}
        extract0 = breakdown["extract"]["0"]
        assert extract0["count"] == 2
        assert extract0["mean"] == pytest.approx(0.020)
        assert breakdown["serve"]["1"]["count"] == 1

    def test_empty_registry_gives_empty_breakdown(self):
        assert frame_stage_breakdown(MetricsRegistry()) == {}
