"""Tests for Eedn losses, including gradient checks."""

import numpy as np
import pytest

from repro.eedn.losses import hinge_loss, softmax_cross_entropy
from repro.parrot.trainer import rate_matching_loss


def _numerical_gradient(fn, logits, eps=1e-6):
    grad = np.zeros_like(logits)
    for index in np.ndindex(logits.shape):
        plus = logits.copy()
        plus[index] += eps
        minus = logits.copy()
        minus[index] -= eps
        grad[index] = (fn(plus) - fn(minus)) / (2 * eps)
    return grad


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0]))
        assert loss < 1e-6

    def test_hard_labels_gradient(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        _, grad = softmax_cross_entropy(logits, labels)
        numeric = _numerical_gradient(
            lambda z: softmax_cross_entropy(z, labels)[0], logits
        )
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_soft_targets_gradient(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(2, 5))
        targets = rng.random((2, 5))
        targets /= targets.sum(axis=1, keepdims=True)
        _, grad = softmax_cross_entropy(logits, targets)
        numeric = _numerical_gradient(
            lambda z: softmax_cross_entropy(z, targets)[0], logits
        )
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        labels = np.array([1])
        a, _ = softmax_cross_entropy(logits, labels)
        b, _ = softmax_cross_entropy(logits + 100.0, labels)
        assert np.isclose(a, b)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros((2, 4)))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3))


class TestHingeLoss:
    def test_zero_inside_margin(self):
        loss, grad = hinge_loss(np.array([2.0, -2.0]), np.array([1, -1]))
        assert loss == 0.0
        assert not grad.any()

    def test_active_margin_gradient(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(size=6)
        labels = np.where(rng.random(6) > 0.5, 1.0, -1.0)
        _, grad = hinge_loss(scores, labels)
        numeric = _numerical_gradient(lambda s: hinge_loss(s, labels)[0], scores)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            hinge_loss(np.array([1.0]), np.array([0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            hinge_loss(np.array([1.0, 2.0]), np.array([1]))


class TestRateMatchingLoss:
    def test_gradient(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(3, 4)) * 4
        targets = rng.random((3, 4))
        _, grad = rate_matching_loss(logits, targets)
        numeric = _numerical_gradient(
            lambda z: rate_matching_loss(z, targets)[0], logits
        )
        assert np.allclose(grad, numeric, atol=1e-4)

    def test_matched_rates_minimise(self):
        targets = np.array([[0.25, 0.75]])
        # Logits whose sigmoid(z/4) equals the targets.
        logits = 4.0 * np.log(targets / (1 - targets))
        _, grad = rate_matching_loss(logits, targets)
        assert np.abs(grad).max() < 1e-9

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rate_matching_loss(np.zeros((2, 3)), np.zeros((2, 4)))
