"""The bench-regression gate (``benchmarks/check_regression.py``).

The gate compares freshly generated BENCH_*.json payloads against the
committed baselines and must (a) fail on a >10 % throughput drop or a
blown telemetry budget, (b) warn-and-pass when either side is missing
or the workload configs differ, and (c) always exit 0 in ``--warn-only``
rollout mode. The script is a CLI, not a package module, so the tests
load it by path with :mod:`importlib`.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


def _load_module():
    spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_regression = _load_module()


ENGINE = {
    "workload": {"cells": 8, "window": 64},
    "batch_size": 32,
    "batch_windows_per_second": 20.0,
}
SERVE = {
    "workload": {"requests": 96, "concurrency": 32},
    "service": {"max_batch_size": 8},
    "service_requests_per_second": 50.0,
    "obs_overhead_fraction": 0.02,
    "sharded_obs_overhead_fraction": 0.03,
}
FAULTS = {
    "fault_kind": "drop",
    "rates": [0.0, 0.5, 1.0],
    "fault_seeds": 2,
    "ticks": 16,
    "hidden": 32,
    "approaches": {
        "Parrot": {"miss_rate": [0.10, 0.40, 1.0]},
        "SVM": {"miss_rate": [0.05, 0.30, 1.0]},
    },
}


def _write_dir(path, engine=None, serve=None, faults=None):
    path.mkdir(parents=True, exist_ok=True)
    for name, payload in (
        ("BENCH_engine.json", engine),
        ("BENCH_serve.json", serve),
        ("BENCH_faults.json", faults),
    ):
        if payload is not None:
            (path / name).write_text(json.dumps(payload))


def _run(tmp_path, baseline, current, extra=()):
    """Exit code of ``main()`` over two payload directories."""
    base_dir = tmp_path / "baseline"
    cur_dir = tmp_path / "current"
    _write_dir(base_dir, **baseline)
    _write_dir(cur_dir, **current)
    argv = [
        "check_regression.py",
        "--baseline-dir", str(base_dir),
        "--current-dir", str(cur_dir),
        *extra,
    ]
    old_argv = sys.argv
    sys.argv = argv
    try:
        return check_regression.main()
    finally:
        sys.argv = old_argv


class TestPassPaths:
    def test_identical_payloads_pass(self, tmp_path, capsys):
        payloads = {"engine": ENGINE, "serve": SERVE, "faults": FAULTS}
        assert _run(tmp_path, payloads, payloads) == 0
        out = capsys.readouterr().out
        assert "OK: 3 benchmark payload(s) compared" in out

    def test_improvement_passes(self, tmp_path):
        current = {
            "engine": {**ENGINE, "batch_windows_per_second": 40.0},
            "serve": {**SERVE, "service_requests_per_second": 99.0},
        }
        assert _run(
            tmp_path, {"engine": ENGINE, "serve": SERVE}, current
        ) == 0

    def test_small_regression_within_floor_passes(self, tmp_path):
        current = {"engine": {**ENGINE, "batch_windows_per_second": 18.5}}
        assert _run(tmp_path, {"engine": ENGINE}, current) == 0


class TestFailPaths:
    def test_throughput_regression_fails(self, tmp_path, capsys):
        current = {"engine": {**ENGINE, "batch_windows_per_second": 10.0}}
        assert _run(tmp_path, {"engine": ENGINE}, current) == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.err

    def test_serve_regression_fails(self, tmp_path):
        current = {"serve": {**SERVE, "service_requests_per_second": 30.0}}
        assert _run(tmp_path, {"serve": SERVE}, current) == 1

    def test_obs_overhead_budget_is_absolute(self, tmp_path, capsys):
        # Throughput identical, but the current run burns 12% on
        # telemetry: the budget check fails regardless of the baseline.
        current = {"serve": {**SERVE, "obs_overhead_fraction": 0.12}}
        assert _run(tmp_path, {"serve": SERVE}, current) == 1
        assert "budget" in capsys.readouterr().err

    def test_sharded_obs_overhead_shares_the_budget(self, tmp_path, capsys):
        # The in-process arm is within budget, but the worker tier's
        # span/delta shipping blows it: the gate fails on the sharded
        # field alone.
        current = {
            "serve": {**SERVE, "sharded_obs_overhead_fraction": 0.12}
        }
        assert _run(tmp_path, {"serve": SERVE}, current) == 1
        err = capsys.readouterr().err
        assert "sharded_obs_overhead_fraction" in err

    def test_missrate_rise_fails(self, tmp_path):
        bad = json.loads(json.dumps(FAULTS))
        bad["approaches"]["Parrot"]["miss_rate"][0] = 0.30
        assert _run(tmp_path, {"faults": FAULTS}, {"faults": bad}) == 1

    def test_threshold_flags_are_honored(self, tmp_path):
        current = {"engine": {**ENGINE, "batch_windows_per_second": 12.0}}
        assert _run(
            tmp_path,
            {"engine": ENGINE},
            current,
            extra=("--max-throughput-regression", "0.5"),
        ) == 0


class TestWarnAndPass:
    def test_warn_only_reports_but_exits_zero(self, tmp_path, capsys):
        current = {"engine": {**ENGINE, "batch_windows_per_second": 1.0}}
        assert _run(
            tmp_path, {"engine": ENGINE}, current, extra=("--warn-only",)
        ) == 0
        captured = capsys.readouterr()
        assert "regressed" in captured.err
        assert "warn-only" in captured.out

    def test_payload_without_sharded_overhead_warns_and_passes(
        self, tmp_path, capsys
    ):
        # Payloads generated before the sharded obs arm existed lack
        # the field; the gate must warn, not fail.
        old = {k: v for k, v in SERVE.items()
               if k != "sharded_obs_overhead_fraction"}
        assert _run(tmp_path, {"serve": SERVE}, {"serve": old}) == 0
        out = capsys.readouterr().out
        assert "no sharded_obs_overhead_fraction" in out

    def test_missing_baseline_passes(self, tmp_path, capsys):
        assert _run(tmp_path, {}, {"engine": ENGINE}) == 0
        assert "missing; skipping" in capsys.readouterr().out

    def test_missing_current_passes(self, tmp_path):
        assert _run(tmp_path, {"engine": ENGINE}, {}) == 0

    def test_unparseable_payload_passes(self, tmp_path, capsys):
        base_dir = tmp_path / "baseline"
        cur_dir = tmp_path / "current"
        _write_dir(base_dir, engine=ENGINE)
        _write_dir(cur_dir)
        (cur_dir / "BENCH_engine.json").write_text("{not json")
        old_argv = sys.argv
        sys.argv = [
            "check_regression.py",
            "--baseline-dir", str(base_dir),
            "--current-dir", str(cur_dir),
        ]
        try:
            assert check_regression.main() == 0
        finally:
            sys.argv = old_argv
        assert "unparseable" in capsys.readouterr().out

    def test_config_mismatch_skips_comparison(self, tmp_path, capsys):
        # A --quick current run against a full-size baseline: the
        # throughput numbers are incomparable, so the gate skips them
        # even when the drop is huge.
        current = {
            "engine": {
                **ENGINE,
                "workload": {"cells": 2, "window": 16},
                "batch_windows_per_second": 1.0,
            }
        }
        assert _run(tmp_path, {"engine": ENGINE}, current) == 0
        assert "configs differ" in capsys.readouterr().out

    def test_zero_baseline_throughput_skips(self, tmp_path, capsys):
        baseline = {"engine": {**ENGINE, "batch_windows_per_second": 0.0}}
        assert _run(tmp_path, baseline, {"engine": ENGINE}) == 0
        assert "skipping" in capsys.readouterr().out


class TestAgainstCommittedBaselines:
    def test_committed_baselines_self_compare_clean(self, capsys):
        """The gate must pass when current == the committed baselines."""
        repo = _SCRIPT.parent.parent
        if not (repo / "BENCH_engine.json").is_file():
            pytest.skip("no committed baselines in this checkout")
        old_argv = sys.argv
        sys.argv = [
            "check_regression.py",
            "--baseline-dir", str(repo),
            "--current-dir", str(repo),
        ]
        try:
            assert check_regression.main() == 0
        finally:
            sys.argv = old_argv
        assert "no regression" in capsys.readouterr().out
