"""Tests for the corelet abstraction and compiler."""

import numpy as np
import pytest

from repro.corelets import compile_corelet, connect
from repro.corelets.library import SplitterCorelet
from repro.errors import CompilationError
from repro.truenorth import Simulator
from repro.truenorth.system import NeurosynapticSystem


class TestCompile:
    def test_fresh_system_created(self):
        program = compile_corelet(SplitterCorelet(2, 1))
        assert program.system.core_count == program.core_count == 1
        assert "in" in program.system.input_ports
        assert "out" in program.system.output_probes

    def test_existing_system_reused(self):
        system = NeurosynapticSystem("shared")
        program = compile_corelet(SplitterCorelet(2, 1), system=system)
        assert program.system is system

    def test_port_widths_match_pins(self):
        program = compile_corelet(SplitterCorelet(3, 2))
        assert program.system.input_ports["in"].width == 3
        assert program.system.output_probes["out"].width == 6


class TestConnect:
    def test_one_to_one(self):
        system = NeurosynapticSystem()
        a = SplitterCorelet(2, 1, name="a").build(system)
        b = SplitterCorelet(2, 1, name="b").build(system)
        connect(system, a, b)
        assert len(system.router.routes) == 2

    def test_pin_subset(self):
        system = NeurosynapticSystem()
        a = SplitterCorelet(1, 3, name="a").build(system)
        b = SplitterCorelet(2, 1, name="b").build(system)
        connect(system, a, b, output_pins=[0, 1], input_pins=[0, 1])
        assert len(system.router.routes) == 2

    def test_mismatched_counts(self):
        system = NeurosynapticSystem()
        a = SplitterCorelet(2, 1, name="a").build(system)
        b = SplitterCorelet(3, 1, name="b").build(system)
        with pytest.raises(CompilationError):
            connect(system, a, b)

    def test_chained_corelets_relay(self):
        system = NeurosynapticSystem()
        a = SplitterCorelet(1, 1, name="a").build(system)
        b = SplitterCorelet(1, 1, name="b").build(system)
        connect(system, a, b)
        system.add_input_port("in", [[ref] for ref in a.inputs])
        system.add_output_probe("out", list(b.outputs))
        raster = np.zeros((6, 1), dtype=bool)
        raster[0, 0] = True
        result = Simulator(system, rng=0).run(6, {"in": raster})
        assert result.spike_counts("out")[0] == 1
