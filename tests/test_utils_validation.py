"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_choice,
    check_in_range,
    check_positive,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1e-9)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -3)


class TestCheckInRange:
    def test_bounds_inclusive(self):
        check_in_range("v", 0.0, 0.0, 1.0)
        check_in_range("v", 1.0, 0.0, 1.0)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("v", 1.01, 0.0, 1.0)


class TestCheckShape:
    def test_exact_match(self):
        check_shape("a", np.zeros((2, 3)), (2, 3))

    def test_wildcard(self):
        check_shape("a", np.zeros((2, 7)), (2, -1))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((2, 3)), (2, 3, 1))

    def test_extent_mismatch(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((2, 3)), (3, 3))


class TestCheckChoice:
    def test_accepts_member(self):
        check_choice("mode", "l2", ["l2", "none"])

    def test_rejects_nonmember(self):
        with pytest.raises(ValueError, match="mode"):
            check_choice("mode", "l3", ["l2", "none"])
