"""Property-based tests (hypothesis) for the spike coding layer.

Documented tolerances under test:

- rate and burst coding round the value onto ``ticks`` levels, so
  ``|decode(encode(x)) - x| <= 1 / (2 * ticks)`` exactly;
- stochastic coding is a binomial estimate whose error concentrates as
  ``sqrt(x (1 - x) / ticks)``; with a fixed seed we bound it loosely;
- quantisation must be idempotent and monotone (order-preserving), and
  count/fixed-point conversions must round-trip on the representable
  grid.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.coding.burst import BurstEncoder
from repro.coding.quantize import (
    dequantize_counts,
    from_fixed_point,
    quantize_to_counts,
    quantize_uniform,
    to_fixed_point,
)
from repro.coding.rate import RateEncoder
from repro.coding.stochastic import StochasticEncoder

unit_values = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=24),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
windows = st.integers(min_value=1, max_value=96)


class TestEncoderRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(values=unit_values, ticks=windows)
    def test_rate_round_trip_within_half_step(self, values, ticks):
        encoder = RateEncoder(ticks)
        raster = encoder.encode(values)
        assert raster.shape == (ticks, values.size)
        decoded = encoder.decode(raster)
        assert np.all(np.abs(decoded - values) <= 0.5 / ticks + 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(values=unit_values, ticks=windows)
    def test_burst_round_trip_within_half_step(self, values, ticks):
        encoder = BurstEncoder(ticks)
        decoded = encoder.decode(encoder.encode(values))
        assert np.all(np.abs(decoded - values) <= 0.5 / ticks + 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(values=unit_values, ticks=windows)
    def test_rate_and_burst_decode_identically(self, values, ticks):
        rate, burst = RateEncoder(ticks), BurstEncoder(ticks)
        np.testing.assert_array_equal(
            rate.decode(rate.encode(values)), burst.decode(burst.encode(values))
        )

    @settings(max_examples=40, deadline=None)
    @given(values=unit_values, seed=st.integers(min_value=0, max_value=2**31))
    def test_stochastic_round_trip_within_binomial_bound(self, values, seed):
        # 6 standard errors of the binomial estimator plus the half-step,
        # with a 5-spike floor: for x near 0 or 1 the normal
        # approximation under-covers the binomial tail (at x ~ 6e-5 a
        # correct encoder legitimately lands 2 spikes in 256 ticks, far
        # past 6 sigma), while P(count deviates by >= 5 spikes) stays
        # astronomically small there. Deterministic per (values, seed).
        ticks = 256
        encoder = StochasticEncoder(ticks)
        decoded = encoder.decode(encoder.encode(values, rng=seed))
        sigma = np.sqrt(values * (1.0 - values) / ticks)
        tolerance = np.maximum(6.0 * sigma, 5.0 / ticks) + 0.5 / ticks
        assert np.all(np.abs(decoded - values) <= tolerance)

    @settings(max_examples=40, deadline=None)
    @given(values=unit_values, seed=st.integers(min_value=0, max_value=2**31))
    def test_stochastic_encode_is_reproducible(self, values, seed):
        encoder = StochasticEncoder(16)
        np.testing.assert_array_equal(
            encoder.encode(values, rng=seed), encoder.encode(values, rng=seed)
        )


class TestQuantizeProperties:
    @settings(max_examples=60, deadline=None)
    @given(values=unit_values, levels=st.integers(min_value=2, max_value=257))
    def test_quantize_uniform_idempotent(self, values, levels):
        once = quantize_uniform(values, levels)
        np.testing.assert_array_equal(quantize_uniform(once, levels), once)

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        b=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        levels=st.integers(min_value=2, max_value=257),
    )
    def test_quantize_uniform_monotone(self, a, b, levels):
        lo, hi = min(a, b), max(a, b)
        qlo, qhi = quantize_uniform(np.array([lo, hi]), levels)
        assert qlo <= qhi

    @settings(max_examples=60, deadline=None)
    @given(values=unit_values, levels=st.integers(min_value=2, max_value=257))
    def test_quantize_uniform_error_within_half_step(self, values, levels):
        step = 1.0 / (levels - 1)
        err = np.abs(quantize_uniform(values, levels) - values)
        assert np.all(err <= step / 2 + 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(values=unit_values, window=windows)
    def test_counts_round_trip_is_idempotent(self, values, window):
        counts = quantize_to_counts(values, window)
        assert counts.dtype == np.int64
        assert np.all((counts >= 0) & (counts <= window))
        recovered = dequantize_counts(counts, window)
        np.testing.assert_array_equal(
            quantize_to_counts(recovered, window), counts
        )

    @settings(max_examples=60, deadline=None)
    @given(
        values=unit_values,
        a=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        b=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        window=windows,
    )
    def test_counts_monotone(self, values, a, b, window):
        del values
        lo, hi = min(a, b), max(a, b)
        qlo, qhi = quantize_to_counts(np.array([lo, hi]), window)
        assert qlo <= qhi

    @settings(max_examples=60, deadline=None)
    @given(
        raw=hnp.arrays(
            dtype=np.int64,
            shape=st.integers(min_value=0, max_value=24),
            elements=st.integers(min_value=-(2**20), max_value=2**20),
        ),
        bits=st.integers(min_value=0, max_value=12),
    )
    def test_fixed_point_round_trip_exact_on_grid(self, raw, bits):
        values = from_fixed_point(raw, bits)
        np.testing.assert_array_equal(to_fixed_point(values, bits), raw)
