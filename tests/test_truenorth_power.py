"""Tests for the TrueNorth power constants and arithmetic."""

import pytest

from repro.truenorth.power import (
    CHIP_CORES,
    CHIP_POWER_WATTS,
    CORE_POWER_WATTS,
    chips_required,
    system_power_watts,
)


class TestConstants:
    def test_chip_power_consistent_with_core_power(self):
        # 4096 cores x 16 uW ~= 66 mW (paper Section 2.2).
        assert abs(CHIP_CORES * CORE_POWER_WATTS - CHIP_POWER_WATTS) < 0.005

    def test_core_power_is_16_microwatts(self):
        assert CORE_POWER_WATTS == pytest.approx(16e-6)


class TestChipsRequired:
    def test_zero(self):
        assert chips_required(0) == 0

    def test_exact_fill(self):
        assert chips_required(4096) == 1

    def test_one_over(self):
        assert chips_required(4097) == 2

    def test_paper_napprox_scale(self):
        # ~2.6M cores -> ~636 chips (paper: "nearly 650 TrueNorth chips").
        assert 600 <= chips_required(2_600_000) <= 660

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chips_required(-1)


class TestSystemPower:
    def test_per_core(self):
        assert system_power_watts(1000) == pytest.approx(0.016)

    def test_whole_chips(self):
        assert system_power_watts(4097, per_core=False) == pytest.approx(0.132)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            system_power_watts(-5)
