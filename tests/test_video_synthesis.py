"""Tests for the synthetic video generator (repro.video.synthesis)."""

import numpy as np
import pytest

from repro.video import MOTION_LEVELS, VideoConfig, synthesize_sequence


def _config(motion, **overrides):
    base = dict(
        shape=(120, 160), n_frames=4, motion=motion, person_height=60,
        walk_speed=6,
    )
    base.update(overrides)
    return VideoConfig(**base)


class TestMotionLevels:
    def test_static_frames_byte_identical(self):
        sequence = synthesize_sequence(_config("static"), rng=1)
        first = sequence[0].image
        for scene in sequence:
            assert np.array_equal(scene.image, first)

    def test_static_annotations_fixed(self):
        sequence = synthesize_sequence(_config("static"), rng=1)
        first = sequence[0].annotations[0].as_array()
        for scene in sequence:
            assert np.array_equal(scene.annotations[0].as_array(), first)

    def test_walk_annotations_translate(self):
        config = _config("walk")
        sequence = synthesize_sequence(config, rng=1)
        xs = [scene.annotations[0].as_array()[0] for scene in sequence]
        deltas = np.abs(np.diff(xs))
        assert np.all(deltas > 0)
        # Linear trajectory: every step is the walk speed, except when
        # the person wraps around the frame edge.
        span = sequence[0].image.shape[1]
        assert all(
            np.isclose(d, config.walk_speed) or d > span / 2 for d in deltas
        )

    def test_walk_background_mostly_static(self):
        sequence = synthesize_sequence(_config("walk"), rng=1)
        a, b = sequence[0].image, sequence[1].image
        changed = np.mean(a != b)
        assert 0.0 < changed < 0.5

    def test_full_motion_changes_everywhere(self):
        sequence = synthesize_sequence(_config("full"), rng=1)
        a, b = sequence[0].image, sequence[1].image
        assert np.mean(a != b) > 0.9


class TestDeterminism:
    @pytest.mark.parametrize("motion", MOTION_LEVELS)
    def test_same_seed_is_byte_identical(self, motion):
        one = synthesize_sequence(_config(motion), rng=7)
        two = synthesize_sequence(_config(motion), rng=7)
        for scene_a, scene_b in zip(one, two):
            assert np.array_equal(scene_a.image, scene_b.image)
            assert len(scene_a.annotations) == len(scene_b.annotations)

    def test_different_seed_differs(self):
        one = synthesize_sequence(_config("static"), rng=7)
        two = synthesize_sequence(_config("static"), rng=8)
        assert not np.array_equal(one[0].image, two[0].image)


class TestSequenceContainer:
    def test_len_iter_getitem(self):
        sequence = synthesize_sequence(_config("static", n_frames=3), rng=1)
        assert len(sequence) == 3
        assert len(list(sequence)) == 3
        assert sequence[2] is list(sequence)[2]

    def test_frames_in_unit_range(self):
        sequence = synthesize_sequence(_config("full"), rng=1)
        for scene in sequence:
            assert scene.image.min() >= 0.0
            assert scene.image.max() <= 1.0

    def test_ground_truth_shapes(self):
        sequence = synthesize_sequence(_config("walk", n_people=2), rng=1)
        truth = sequence.ground_truth()
        assert len(truth) == len(sequence)
        for boxes in truth:
            assert boxes.ndim == 2
            assert boxes.shape[1] == 4


class TestValidation:
    def test_unknown_motion_rejected(self):
        with pytest.raises(ValueError, match="motion"):
            synthesize_sequence(_config("jitter"))

    def test_bad_frame_count_rejected(self):
        with pytest.raises(ValueError, match="n_frames"):
            synthesize_sequence(_config("static", n_frames=0))
