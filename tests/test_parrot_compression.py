"""Tests for parrot structured compression (the paper's future work)."""

import numpy as np
import pytest

from repro.eedn import EednNetwork, ThresholdActivation, TrinaryDense
from repro.parrot.compression import (
    compress_to_cores,
    hidden_unit_importance,
    power_per_window,
    prune_hidden_units,
)


def _parrot_like(hidden=64, seed=0):
    return EednNetwork(
        [
            TrinaryDense(64, hidden, rng=seed),
            ThresholdActivation(0.0, ste_window=2.0),
            TrinaryDense(hidden, 18, rng=seed + 1),
        ]
    )


class TestImportance:
    def test_shape(self):
        saliency = hidden_unit_importance(_parrot_like(32))
        assert saliency.shape == (32,)
        assert (saliency >= 0).all()

    def test_dead_output_unit_ranks_low(self):
        network = _parrot_like(16)
        network.layers[2].weights[5, :] = 0.0  # unit 5 influences nothing
        saliency = hidden_unit_importance(network)
        assert saliency[5] == saliency.min()

    def test_requires_two_dense(self):
        with pytest.raises(ValueError):
            hidden_unit_importance(EednNetwork([TrinaryDense(4, 4, rng=0)]))


class TestPrune:
    def test_width_reduced(self):
        result = prune_hidden_units(_parrot_like(64), keep=16)
        assert result.network.layers[0].n_out == 16
        assert result.network.layers[2].n_in == 16
        assert len(result.kept_units) == 16

    def test_weights_copied_consistently(self):
        network = _parrot_like(32)
        result = prune_hidden_units(network, keep=8)
        kept = list(result.kept_units)
        assert np.allclose(
            result.network.layers[0].weights, network.layers[0].weights[:, kept]
        )
        assert np.allclose(
            result.network.layers[2].weights, network.layers[2].weights[kept, :]
        )

    def test_original_untouched(self):
        network = _parrot_like(32)
        before = network.layers[0].weights.copy()
        prune_hidden_units(network, keep=4)
        assert np.array_equal(network.layers[0].weights, before)

    def test_outputs_tracked_when_pruning_dead_units(self):
        network = _parrot_like(32)
        # Kill half the units on the output side; pruning to the other
        # half keeps the function close (not exact: the tensor-wise
        # trinarisation dead-zone shifts slightly when rows are removed).
        network.layers[2].weights[16:, :] = 0.0
        result = prune_hidden_units(network, keep=16)
        x = np.random.default_rng(0).random((10, 64))
        original = network.forward(x).ravel()
        pruned = result.network.forward(x).ravel()
        assert np.corrcoef(original, pruned)[0, 1] > 0.8

    def test_keep_validated(self):
        with pytest.raises(ValueError):
            prune_hidden_units(_parrot_like(16), keep=0)
        with pytest.raises(ValueError):
            prune_hidden_units(_parrot_like(16), keep=17)

    def test_cores_shrink_with_width(self):
        wide = prune_hidden_units(_parrot_like(512), keep=512)
        narrow = prune_hidden_units(_parrot_like(512), keep=64)
        assert narrow.cores_per_cell < wide.cores_per_cell


class TestCompressToBudget:
    def test_respects_budget(self):
        network = _parrot_like(512)
        result = compress_to_cores(network, max_cores_per_cell=4)
        assert result.cores_per_cell <= 4
        assert result.network.layers[0].n_out >= 1

    def test_maximises_width(self):
        network = _parrot_like(512)
        result = compress_to_cores(network, max_cores_per_cell=6)
        wider = prune_hidden_units(network, keep=result.network.layers[0].n_out + 32)
        assert wider.cores_per_cell > 6 or (
            result.network.layers[0].n_out + 32 > 512
        )

    def test_impossible_budget(self):
        with pytest.raises(ValueError):
            compress_to_cores(_parrot_like(512), max_cores_per_cell=0)


class TestPowerHelper:
    def test_window_power(self):
        # 8 cores x 128 cells x 16 uW = 16.4 mW per window.
        assert power_per_window(8) == pytest.approx(8 * 128 * 16e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_per_window(-1)
