"""Tests for the inference service: batching, backpressure, deadlines."""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
)
from repro.serve import InferenceService, closed_loop
from repro.serve.loadgen import LoadReport


def _sum_model(matrix):
    return matrix.sum(axis=1)


class _BlockingModel:
    """Scores sums, but only after `release` is set (deterministic tests)."""

    cacheable = True

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self, matrix):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "test forgot to release"
        return matrix.sum(axis=1)


class TestLifecycle:
    def test_submit_before_start_rejected(self):
        service = InferenceService(_sum_model)
        with pytest.raises(ServiceClosedError):
            service.submit(np.zeros(3))

    def test_submit_after_close_rejected(self):
        with InferenceService(_sum_model) as service:
            pass
        with pytest.raises(ServiceClosedError):
            service.submit(np.zeros(3))

    def test_close_drains_queued_requests(self):
        with InferenceService(_sum_model, max_wait_ms=0.0) as service:
            futures = [service.submit(np.full(2, i)) for i in range(20)]
        assert [f.result(timeout=1) for f in futures] == [2.0 * i for i in range(20)]

    def test_close_without_drain_fails_queued(self):
        model = _BlockingModel()
        service = InferenceService(
            model, max_batch_size=1, max_wait_ms=0.0, cache_capacity=0
        ).start()
        first = service.submit(np.zeros(2))
        assert model.entered.wait(timeout=5.0)  # worker is inside the model
        stuck = service.submit(np.ones(2))
        # Unblock the model shortly after close() has emptied the queue.
        threading.Timer(0.2, model.release.set).start()
        service.close(drain=False)
        assert first.result(timeout=5) == 0.0
        with pytest.raises(ServiceClosedError):
            stuck.result(timeout=5)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            InferenceService(_sum_model, queue_capacity=0)
        with pytest.raises(ConfigurationError):
            InferenceService(_sum_model, workers=0)
        with pytest.raises(ConfigurationError):
            InferenceService(_sum_model, cache_capacity=-1)
        with pytest.raises(ConfigurationError):
            InferenceService(object())


class TestScoring:
    def test_results_match_direct_calls(self):
        rows = np.random.default_rng(0).random((50, 6))
        with InferenceService(_sum_model, max_batch_size=8) as service:
            served = service.score_many(rows)
        np.testing.assert_array_equal(served, rows.sum(axis=1))

    def test_single_row_scalar_result(self):
        with InferenceService(_sum_model) as service:
            value = service.score(np.array([1.0, 2.0]))
        assert value == 3.0
        assert isinstance(value, float)

    def test_vector_results_supported(self):
        def doubler(matrix):
            return np.stack([matrix * 2.0])[0]

        rows = np.random.default_rng(1).random((5, 3))
        with InferenceService(doubler, cache_capacity=0) as service:
            futures = [service.submit(row) for row in rows]
            results = np.stack([f.result(timeout=5) for f in futures])
        np.testing.assert_array_equal(results, rows * 2.0)

    def test_requests_coalesce_into_batches(self):
        model = _BlockingModel()
        with InferenceService(
            model, max_batch_size=16, max_wait_ms=50.0, cache_capacity=0
        ) as service:
            futures = [service.submit(np.full(2, i)) for i in range(8)]
            model.release.set()
            for future in futures:
                future.result(timeout=5)
            histogram = service.stats.snapshot()["batch_size_histogram"]
        # The first request may dispatch alone before the rest enqueue,
        # but far fewer batches than requests must have been needed.
        assert sum(histogram.values()) < 8

    def test_model_exception_propagates(self):
        def broken(matrix):
            raise RuntimeError("boom")

        with InferenceService(broken, cache_capacity=0) as service:
            future = service.submit(np.zeros(2))
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=5)
        assert service.stats.counter("failed") == 1

    def test_row_count_mismatch_is_configuration_error(self):
        def truncating(matrix):
            return matrix.sum(axis=1)[:-1] if matrix.shape[0] > 1 else np.zeros(0)

        with InferenceService(
            truncating, max_batch_size=4, cache_capacity=0
        ) as service:
            future = service.submit(np.zeros(2))
            with pytest.raises(ConfigurationError):
                future.result(timeout=5)

    def test_non_1d_features_rejected(self):
        with InferenceService(_sum_model) as service:
            with pytest.raises(ValueError):
                service.submit(np.zeros((2, 2)))


class TestBackpressure:
    def test_saturated_queue_raises_queue_full(self):
        model = _BlockingModel()
        service = InferenceService(
            model,
            max_batch_size=1,
            max_wait_ms=0.0,
            queue_capacity=2,
            cache_capacity=0,
        ).start()
        try:
            in_flight = service.submit(np.zeros(2))
            assert model.entered.wait(timeout=5.0)
            queued = [service.submit(np.zeros(2)) for _ in range(2)]
            with pytest.raises(QueueFullError):
                service.submit(np.zeros(2))
            assert service.stats.counter("rejected_queue_full") == 1
        finally:
            model.release.set()
            service.close()
        for future in [in_flight] + queued:
            assert future.result(timeout=5) == 0.0

    def test_queue_never_grows_beyond_capacity(self):
        model = _BlockingModel()
        service = InferenceService(
            model,
            max_batch_size=1,
            max_wait_ms=0.0,
            queue_capacity=4,
            cache_capacity=0,
        ).start()
        try:
            service.submit(np.zeros(2))
            assert model.entered.wait(timeout=5.0)
            accepted = 0
            for _ in range(50):
                try:
                    service.submit(np.zeros(2))
                    accepted += 1
                except QueueFullError:
                    pass
            assert accepted == 4
            assert service.stats.queue_depth <= 4
        finally:
            model.release.set()
            service.close()


class TestDeadlines:
    def test_expired_in_queue_returns_timeout_without_batch_slot(self):
        model = _BlockingModel()
        service = InferenceService(
            model,
            max_batch_size=1,
            max_wait_ms=0.0,
            cache_capacity=0,
        ).start()
        try:
            blocker = service.submit(np.zeros(2))
            assert model.entered.wait(timeout=5.0)
            doomed = service.submit(np.ones(2), timeout_s=0.01)
            time.sleep(0.05)  # deadline lapses while the worker is busy
        finally:
            model.release.set()
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=5)
        assert blocker.result(timeout=5) == 0.0
        service.close()
        assert service.stats.counter("expired_before_batch") == 1
        # Only the blocker's batch ran: the expired request never
        # occupied a slot.
        assert service.stats.counter("completed") == 1

    def test_expired_after_batch_returns_timeout(self):
        def slow(matrix):
            time.sleep(0.05)
            return matrix.sum(axis=1)

        with InferenceService(slow, max_wait_ms=0.0, cache_capacity=0) as service:
            future = service.submit(np.zeros(2), timeout_s=0.01)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5)
        assert service.stats.counter("expired_after_batch") == 1

    def test_unexpired_deadline_completes(self):
        with InferenceService(_sum_model) as service:
            assert service.score(np.ones(3), timeout_s=30.0) == 3.0


class TestCacheIntegration:
    def test_duplicate_requests_hit_cache(self):
        calls = []

        def counting(matrix):
            calls.append(matrix.shape[0])
            return matrix.sum(axis=1)

        row = np.random.default_rng(2).random(4)
        with InferenceService(counting, max_wait_ms=0.0) as service:
            first = service.score(row)
            second = service.score(row)
        assert first == second
        assert sum(calls) == 1  # the duplicate never reached the model
        assert service.stats.counter("cache_hits") == 1

    def test_cache_disabled_for_noncacheable_model(self):
        class Stateful:
            cacheable = False

            def __call__(self, matrix):
                return matrix.sum(axis=1)

        service = InferenceService(Stateful(), cache_capacity=128)
        assert service.cache is None
        assert service.stats.counter("cache_disabled") == 1

    def test_cache_capacity_zero_disables(self):
        service = InferenceService(_sum_model, cache_capacity=0)
        assert service.cache is None


class TestLoadGenerator:
    def test_hundred_concurrent_requests_all_accounted(self):
        """The CI smoke contract: complete or cleanly reject, never hang."""
        rows = np.random.default_rng(3).random((100, 5))
        with InferenceService(
            _sum_model, max_batch_size=16, queue_capacity=32
        ) as service:
            report = closed_loop(service, rows, concurrency=10, chunk_size=2)
        assert report.accounted
        assert report.completed == 100
        assert report.requests == 100

    def test_report_accounting_detects_loss(self):
        report = LoadReport(requests=5, completed=4)
        assert not report.accounted
        report = LoadReport(requests=5, completed=3, rejected_queue_full=2)
        assert report.accounted
