"""Tests for the image pyramid and the paper's full-HD arithmetic."""

import numpy as np
import pytest

from repro.detection import FULL_HD_CELL_GRIDS, ImagePyramid, full_hd_cell_count
from repro.detection.pyramid import cells_per_second


class TestFullHdNumbers:
    def test_cell_total_is_paper_value(self):
        # Section 5.2: "a total of 57749 cells per image".
        assert full_hd_cell_count() == 57749

    def test_first_layer_is_fullhd_cells(self):
        assert FULL_HD_CELL_GRIDS[0] == (240, 135)  # 1920/8 x 1080/8

    def test_rate_at_26fps(self):
        # Section 5.2: "an overall throughput of 1.5 million cells/second".
        assert cells_per_second(26.0) == pytest.approx(1.5e6, rel=0.01)

    def test_bad_fps(self):
        with pytest.raises(ValueError):
            cells_per_second(0)


class TestPyramid:
    def test_first_level_is_original(self):
        image = np.random.default_rng(0).random((160, 200))
        levels = ImagePyramid(image).levels()
        assert levels[0].scale == 1.0
        assert np.array_equal(levels[0].image, image)

    def test_scales_grow_geometrically(self):
        image = np.zeros((256, 256))
        levels = ImagePyramid(image, scale_factor=1.1).levels()
        scales = [level.scale for level in levels]
        ratios = np.diff(np.log(scales))
        assert np.allclose(ratios, np.log(1.1))

    def test_stops_when_window_no_longer_fits(self):
        image = np.zeros((140, 80))
        levels = ImagePyramid(image, window_shape=(128, 64)).levels()
        for level in levels:
            assert level.image.shape[0] >= 128
            assert level.image.shape[1] >= 64

    def test_max_levels_cap(self):
        image = np.zeros((1280, 640))
        levels = ImagePyramid(image, max_levels=15).levels()
        assert len(levels) == 15  # the paper's 15 window scales

    def test_too_small_image_no_levels(self):
        levels = ImagePyramid(np.zeros((100, 100))).levels()
        assert levels == []

    def test_scale_factor_validated(self):
        with pytest.raises(ValueError):
            ImagePyramid(np.zeros((200, 200)), scale_factor=1.0)

    def test_rejects_color(self):
        with pytest.raises(ValueError):
            ImagePyramid(np.zeros((200, 200, 3)))

    def test_iterable(self):
        image = np.zeros((160, 160))
        assert len(list(ImagePyramid(image))) >= 1


class TestPyramidEdgeCases:
    """Degenerate shapes the batched detection pipeline now exercises."""

    def test_image_exactly_window_sized_has_one_level(self):
        levels = ImagePyramid(np.zeros((128, 64)), window_shape=(128, 64)).levels()
        assert len(levels) == 1
        assert levels[0].scale == 1.0
        assert levels[0].image.shape == (128, 64)

    def test_image_one_pixel_short_in_height(self):
        assert ImagePyramid(np.zeros((127, 64)), window_shape=(128, 64)).levels() == []

    def test_image_one_pixel_short_in_width(self):
        assert ImagePyramid(np.zeros((128, 63)), window_shape=(128, 64)).levels() == []

    def test_empty_image(self):
        assert ImagePyramid(np.zeros((0, 0)), window_shape=(8, 8)).levels() == []

    def test_iterating_smaller_than_window_is_empty(self):
        assert list(ImagePyramid(np.zeros((4, 4)), window_shape=(8, 8))) == []
