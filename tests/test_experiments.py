"""Integration tests for the experiment harnesses (miniature scale)."""

import pytest

from repro.experiments import fig4, fig6, table2
from repro.experiments.setup import (
    detection_curve,
    make_experiment_data,
    train_eedn_classifier,
    train_svm_detector,
    window_feature_matrix,
)
from repro.hog import HogDescriptor
from repro.napprox import NApproxDescriptor


class TestSetup:
    def test_split_shapes(self, small_split):
        assert small_split.positive_windows.shape[1:] == (128, 64)
        assert len(small_split.test_scenes) == 6
        assert len(small_split.ground_truth()) == 6

    def test_feature_matrix(self, small_split):
        features = window_feature_matrix(
            HogDescriptor(), small_split.positive_windows[:3]
        )
        assert features.shape == (3, 3780)

    def test_svm_detector_trains(self, small_split):
        detector, miner = train_svm_detector(
            HogDescriptor(), small_split, mining_rounds=0
        )
        assert miner.model is not None
        curve = detection_curve(detector, small_split)
        assert 0.0 <= curve.log_average_miss_rate() <= 1.0

    def test_eedn_classifier_trains(self, small_split):
        network, result = train_eedn_classifier(
            NApproxDescriptor(), small_split, hidden=64, epochs=8
        )
        assert result.train_accuracy[-1] > 0.6
        assert network.layers[0].n_in == 2304


class TestTable2Harness:
    def test_runs_and_reports(self):
        result = table2.run(measure_corelet=True)
        assert result.measured_napprox_cores == 22
        report = table2.format_report(result)
        assert "40.0" in report  # the paper column
        assert "6.5x-208x" in report

    def test_ratios(self):
        result = table2.run(measure_corelet=False)
        assert 6.0 <= result.ratio_32 <= 7.5
        assert 190 <= result.ratio_1 <= 230


class TestFig6Harness:
    def test_sweep_shapes(self):
        result = fig6.run(spike_windows=(8, 1), n_validation=80, rng=0)
        assert len(result.points) == 2
        assert result.points[0].spikes == 8
        assert result.points[0].throughput_cells_per_second == 125
        report = fig6.format_report(result)
        assert "8-spike" in report

    def test_throughput_monotone(self):
        result = fig6.run(spike_windows=(8, 1), n_validation=60, rng=0)
        assert (
            result.points[1].throughput_cells_per_second
            > result.points[0].throughput_cells_per_second
        )


@pytest.mark.slow
class TestFig4Harness:
    def test_small_run(self):
        data = make_experiment_data(
            n_positive=30,
            n_negative=60,
            n_negative_images=2,
            n_test_scenes=5,
            scene_shape=(176, 224),
            rng=3,
        )
        result = fig4.run(data, mining_rounds=0)
        assert set(result.curves) == {"FPGA-HoG", "NApprox(fp)", "NApprox"}
        rates = result.log_average_miss_rates()
        assert all(0.0 <= v <= 1.0 for v in rates.values())
        report = fig4.format_report(result)
        assert "Figure 4" in report
