"""Tests for the micro-batching scheduler."""

import queue

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.batcher import BatchPolicy, MicroBatcher, ServeRequest


def _request(deadline=None):
    return ServeRequest(features=np.zeros(4), deadline=deadline)


def _filled_queue(requests):
    source = queue.Queue()
    for request in requests:
        source.put(request)
    return source


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch_size == 32
        assert policy.max_wait_ms == 2.0

    def test_rejects_zero_batch(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch_size=0)

    def test_rejects_negative_wait(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_wait_ms=-1.0)


class TestMicroBatcher:
    def test_empty_queue_returns_empty_batch(self):
        batcher = MicroBatcher(queue.Queue(), BatchPolicy())
        assert batcher.collect(block_s=0.01) == []

    def test_drains_up_to_max_batch_size(self):
        requests = [_request() for _ in range(7)]
        batcher = MicroBatcher(
            _filled_queue(requests), BatchPolicy(max_batch_size=4, max_wait_ms=0)
        )
        first = batcher.collect(block_s=0.01)
        second = batcher.collect(block_s=0.01)
        assert [id(r) for r in first] == [id(r) for r in requests[:4]]
        assert [id(r) for r in second] == [id(r) for r in requests[4:]]

    def test_zero_wait_takes_only_available(self):
        requests = [_request(), _request()]
        batcher = MicroBatcher(
            _filled_queue(requests),
            BatchPolicy(max_batch_size=32, max_wait_ms=0),
        )
        assert len(batcher.collect(block_s=0.01)) == 2

    def test_expired_requests_never_occupy_a_slot(self):
        clock = lambda: 100.0  # noqa: E731 - fixed time source
        live = _request(deadline=200.0)
        dead = _request(deadline=50.0)
        expired = []
        batcher = MicroBatcher(
            _filled_queue([dead, live]),
            BatchPolicy(max_batch_size=2, max_wait_ms=0),
            on_expired=expired.append,
            clock=clock,
        )
        batch = batcher.collect(block_s=0.01)
        assert batch == [live]
        assert expired == [dead]

    def test_all_expired_yields_empty_batch(self):
        clock = lambda: 100.0  # noqa: E731
        requests = [_request(deadline=1.0) for _ in range(3)]
        expired = []
        batcher = MicroBatcher(
            _filled_queue(requests),
            BatchPolicy(max_batch_size=8, max_wait_ms=0),
            on_expired=expired.append,
            clock=clock,
        )
        assert batcher.collect(block_s=0.01) == []
        assert len(expired) == 3

    def test_expired_slot_freed_for_later_request(self):
        """A lapsed deadline lets another queued request into the batch."""
        clock = lambda: 100.0  # noqa: E731
        dead = _request(deadline=1.0)
        tail = [_request() for _ in range(2)]
        batcher = MicroBatcher(
            _filled_queue([dead] + tail),
            BatchPolicy(max_batch_size=2, max_wait_ms=0),
            on_expired=lambda r: None,
            clock=clock,
        )
        batch = batcher.collect(block_s=0.01)
        assert [id(r) for r in batch] == [id(r) for r in tail]


class TestDeadlineBoundary:
    def test_deadline_exactly_now_is_expired(self):
        """The boundary is inclusive: a request checked exactly at its
        deadline must not be scored (regression for the strict-`>`
        off-by-one that let boundary requests through)."""
        request = _request(deadline=100.0)
        assert request.expired(100.0)
        assert request.expired(100.0001)
        assert not request.expired(99.9999)

    def test_no_deadline_never_expires(self):
        assert not _request(deadline=None).expired(1e12)

    def test_batcher_expires_request_at_exact_deadline(self):
        clock = lambda: 100.0  # noqa: E731 - fixed time source
        boundary = _request(deadline=100.0)
        live = _request(deadline=100.5)
        expired = []
        batcher = MicroBatcher(
            _filled_queue([boundary, live]),
            BatchPolicy(max_batch_size=2, max_wait_ms=0),
            on_expired=expired.append,
            clock=clock,
        )
        assert batcher.collect(block_s=0.01) == [live]
        assert expired == [boundary]

    def test_max_wait_zero_with_boundary_deadlines(self):
        """max_wait_ms=0 drains whatever is immediately available and
        still applies the inclusive deadline check to each request."""
        clock = lambda: 50.0  # noqa: E731
        requests = [
            _request(deadline=50.0),   # exactly now -> expired
            _request(deadline=49.0),   # past -> expired
            _request(deadline=51.0),   # live
            _request(),                # no deadline -> live
        ]
        expired = []
        batcher = MicroBatcher(
            _filled_queue(requests),
            BatchPolicy(max_batch_size=8, max_wait_ms=0),
            on_expired=expired.append,
            clock=clock,
        )
        batch = batcher.collect(block_s=0.01)
        assert [id(r) for r in batch] == [id(r) for r in requests[2:]]
        assert [id(r) for r in expired] == [id(r) for r in requests[:2]]
