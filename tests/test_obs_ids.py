"""Fork-safe trace/span id minting (``repro.obs.ids``).

The load-bearing property: ids minted by the parent process and ids
minted by a forked, namespaced worker are disjoint *by construction*
(bare 16-hex vs ``ns-12hex`` shapes), so cross-process trace assembly
can never merge two unrelated traces on an id collision. The fork test
exercises a real ``fork`` child, matching what
``ShardedInferenceService`` workers do.
"""

import multiprocessing
import re

import pytest

from repro.obs.ids import (
    NAMESPACED_HEX_DIGITS,
    configure_namespace,
    id_namespace,
    new_span_id,
    new_trace_id,
)


@pytest.fixture(autouse=True)
def bare_namespace():
    configure_namespace(None)
    yield
    configure_namespace(None)


class TestShapes:
    def test_bare_ids_are_16_hex(self):
        for _ in range(32):
            assert re.fullmatch(r"[0-9a-f]{16}", new_trace_id())
            assert re.fullmatch(r"[0-9a-f]{16}", new_span_id())

    def test_namespaced_ids_carry_the_prefix(self):
        configure_namespace("s3")
        pattern = rf"s3-[0-9a-f]{{{NAMESPACED_HEX_DIGITS}}}"
        for _ in range(32):
            assert re.fullmatch(pattern, new_trace_id())
            assert re.fullmatch(pattern, new_span_id())

    def test_namespace_is_queryable(self):
        assert id_namespace() is None
        configure_namespace("s0")
        assert id_namespace() == "s0"

    def test_ids_are_unique_within_a_process(self):
        ids = {new_trace_id() for _ in range(512)}
        assert len(ids) == 512

    def test_validation_rejects_unsafe_namespaces(self):
        for bad in ("", "a-b", " s0", "s0 ", "-"):
            with pytest.raises(ValueError):
                configure_namespace(bad)
        assert id_namespace() is None  # rejected values never stick


def _worker_mint(namespace, count, queue):
    configure_namespace(namespace)
    queue.put([new_trace_id() for _ in range(count)])


class TestForkDisjointness:
    def test_parent_and_forked_worker_ids_never_collide(self):
        """Regression: a forked worker's ids are disjoint from the
        parent's and from a sibling worker's, even though all three
        processes inherited identical interpreter state at fork."""
        parent_ids = {new_trace_id() for _ in range(256)}
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        workers = [
            ctx.Process(target=_worker_mint, args=(f"s{i}", 256, queue))
            for i in range(2)
        ]
        for process in workers:
            process.start()
        shipped = [queue.get(timeout=30.0) for _ in workers]
        for process in workers:
            process.join(timeout=30.0)
        child_a, child_b = (set(ids) for ids in shipped)
        assert len(child_a) == 256 and len(child_b) == 256
        assert not parent_ids & child_a
        assert not parent_ids & child_b
        assert not child_a & child_b
        # the shapes themselves are disjoint: no child id parses as bare
        assert all("-" in tid for tid in child_a | child_b)
        assert all("-" not in tid for tid in parent_ids)
        # the fork did not leak the namespace back into the parent
        assert id_namespace() is None
