"""Tests for the NApprox corelet on the tick-level simulator.

These run real multi-core simulations and are the slowest unit tests in
the suite; counts are kept small.
"""

import numpy as np
import pytest

from repro.napprox import (
    NApproxCellCorelet,
    NApproxCellRunner,
    correlate_corelet_vs_software,
)
from repro.napprox.software import NApproxConfig, NApproxDescriptor
from repro.napprox.validation import random_cell_patch
from repro.truenorth.system import NeurosynapticSystem


@pytest.fixture(scope="module")
def runner():
    return NApproxCellRunner(window=32, rng=0)


class TestFootprint:
    def test_core_count_near_paper(self):
        footprint = NApproxCellCorelet().build(NeurosynapticSystem())
        # Paper reports 26 cores per module; the type-alternation trick
        # saves plumbing, landing at 22.
        assert 20 <= footprint.core_count <= 26

    def test_io_shapes(self):
        footprint = NApproxCellCorelet().build(NeurosynapticSystem())
        assert len(footprint.pixel_targets) == 100
        assert all(len(t) == 2 for t in footprint.pixel_targets)
        assert len(footprint.histogram_outputs) == 18

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NApproxCellCorelet(direction_scale=0)
        with pytest.raises(ValueError):
            NApproxCellCorelet(magnitude_threshold=0)


class TestRunner:
    def test_throughput_contract(self, runner):
        assert runner.ticks_per_cell == 32
        assert runner.core_count <= 26

    def test_flat_patch_no_votes(self, runner):
        histogram = runner.extract(np.full((10, 10), 0.5))
        assert histogram.sum() == 0

    def test_oriented_edge_votes_correct_bin(self, runner):
        patch = np.tile(np.linspace(0.1, 0.9, 10), (10, 1))
        histogram = runner.extract(patch)
        assert histogram.sum() > 0
        assert histogram.argmax() == 0  # gradient along +x

    def test_vertical_edge(self, runner):
        patch = np.tile(np.linspace(0.9, 0.1, 10)[:, None], (1, 10))
        histogram = runner.extract(patch)
        # Intensity increasing upward -> Iy > 0 -> angle ~90 deg (bin 4).
        assert histogram.argmax() == 4

    def test_patch_validation(self, runner):
        with pytest.raises(ValueError):
            runner.extract(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            runner.extract(np.full((10, 10), 1.5))

    def test_matches_software_model(self, runner):
        software = NApproxDescriptor(
            NApproxConfig(quantized=True, window=32)
        )
        rng = np.random.default_rng(7)
        for _ in range(3):
            patch = random_cell_patch(rng)
            hardware = runner.extract(patch)
            reference = software.cell_histogram(patch)
            assert np.abs(hardware - reference).mean() < 1.0


class TestValidationHarness:
    def test_correlation_exceeds_paper_threshold(self):
        # The paper's check runs at the 64-spike quantisation width over
        # 1000 images; this smoke version uses 5 (the full-size check is
        # benchmarks/bench_hw_sw_correlation.py).
        report = correlate_corelet_vs_software(n_cells=5, window=64, rng=42)
        assert report.correlation > 0.995  # the paper's 99.5% check
        assert report.n_cells == 5

    def test_requires_two_cells(self):
        with pytest.raises(ValueError):
            correlate_corelet_vs_software(n_cells=1)


class TestBatchExtraction:
    def test_extract_batch_matches_extract(self, runner):
        rng = np.random.default_rng(6)
        patches = rng.random((3, 10, 10))
        singles = np.stack([runner.extract(patch) for patch in patches])
        np.testing.assert_array_equal(runner.extract_batch(patches), singles)

    def test_batch_engine_matches_reference_runner(self, runner):
        rng = np.random.default_rng(8)
        patches = rng.random((3, 10, 10))
        batch_runner = NApproxCellRunner(window=32, rng=0, engine="batch")
        np.testing.assert_array_equal(
            batch_runner.extract_batch(patches), runner.extract_batch(patches)
        )

    def test_batch_engine_single_extract_matches(self, runner):
        patch = np.tile(np.linspace(0.1, 0.9, 10), (10, 1))
        batch_runner = NApproxCellRunner(window=32, rng=0, engine="batch")
        np.testing.assert_array_equal(
            batch_runner.extract(patch), runner.extract(patch)
        )

    def test_empty_batch(self, runner):
        assert runner.extract_batch(np.zeros((0, 10, 10))).shape == (0, 18)

    def test_batch_validation(self, runner):
        with pytest.raises(ValueError):
            runner.extract_batch(np.zeros((2, 9, 10)))
        with pytest.raises(ValueError):
            runner.extract_batch(np.full((1, 10, 10), 1.5))
