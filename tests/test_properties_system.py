"""Hypothesis property tests on system-wide simulator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import RateEncoder, StochasticEncoder
from repro.corelets import compile_corelet
from repro.corelets.library import AccumulatorCorelet, SplitterCorelet, WeightedSumCorelet
from repro.truenorth import Simulator
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import NeuronParameters, ResetMode


class TestSplitterProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**16 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_copy_is_identical(self, width, fanout, seed):
        """A splitter's copies carry exactly the input spike counts."""
        corelet = SplitterCorelet(width, fanout)
        program = compile_corelet(corelet)
        rng = np.random.default_rng(seed)
        raster = rng.random((12, width)) < 0.4
        result = Simulator(program.system, rng=0).run(12, {"in": raster})
        counts = result.spike_counts("out")
        for copy in range(fanout):
            chunk = counts[copy * width : (copy + 1) * width]
            assert (np.abs(chunk - raster.sum(axis=0)) <= 1).all()

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_silence_in_silence_out(self, width):
        corelet = SplitterCorelet(width, 2)
        program = compile_corelet(corelet)
        raster = np.zeros((8, width), dtype=bool)
        result = Simulator(program.system, rng=0).run(8, {"in": raster})
        assert result.total_spikes == 0


class TestWeightedSumProperties:
    @given(
        st.lists(
            st.integers(min_value=-3, max_value=3), min_size=2, max_size=4
        ),
        st.integers(min_value=0, max_value=2**16 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_rect_rate_tracks_closed_form(self, weights, seed):
        """The rectified weighted sum of rate-coded values approximates
        max(0, w . v) * window within a small spike tolerance."""
        window = 16
        rng = np.random.default_rng(seed)
        values = rng.integers(0, window + 1, len(weights)) / window
        matrix = np.array(weights, dtype=np.int64)[:, None]
        corelet = WeightedSumCorelet(matrix, threshold=1)
        program = compile_corelet(corelet)
        # The output neuron drains at most one spike per tick, so the
        # raster must outlast the worst-case count max|w| * n * window.
        drain = 3 * len(weights) * window + 8
        raster = np.zeros((window + drain, len(weights)), dtype=bool)
        raster[:window] = RateEncoder(window).encode(values)
        result = Simulator(program.system, rng=0).run(
            raster.shape[0], {"in": raster}
        )
        measured = result.spike_counts("out")[0]
        exact = max(0.0, float(matrix[:, 0] @ (values * window)))
        assert abs(measured - exact) <= len(weights) + 1

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_accumulator_conserves_spikes(self, group):
        corelet = AccumulatorCorelet([group])
        program = compile_corelet(corelet)
        # Drain window: the counter emits one spike per tick, so it needs
        # at least 6 * group ticks after the burst.
        ticks = 6 + 6 * group + 4
        raster = np.zeros((ticks, group), dtype=bool)
        raster[:6] = True
        result = Simulator(program.system, rng=0).run(ticks, {"in": raster})
        assert result.spike_counts("out")[0] == 6 * group


class TestNeuronInvariants:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**16 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_linear_reset_count_equals_floor_division(self, threshold, seed):
        """A linear-reset counter emits floor(total_input / threshold)
        spikes once fully drained."""
        system = NeurosynapticSystem()
        core = system.new_core()
        core.set_axon_type(0, 0)
        core.set_neuron(
            0,
            NeuronParameters(
                weights=(1, 0, 0, 0),
                threshold=threshold,
                reset_mode=ResetMode.LINEAR,
            ),
        )
        core.connect(0, 0)
        system.add_input_port("in", [[(0, 0)]])
        system.add_output_probe("out", [(0, 0)])
        rng = np.random.default_rng(seed)
        raster = (rng.random((24, 1)) < 0.5).astype(bool)
        padded = np.vstack([raster, np.zeros((24, 1), dtype=bool)])
        result = Simulator(system, rng=0).run(48, {"in": padded})
        total = int(raster.sum())
        assert result.spike_counts("out")[0] == total // threshold

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=15, deadline=None)
    def test_stochastic_coding_unbiased(self, seed):
        """Long-window stochastic decode converges to the true value."""
        encoder = StochasticEncoder(512)
        value = (seed % 100) / 100.0
        decoded = encoder.decode(encoder.encode(np.array([value]), rng=seed))
        assert abs(decoded[0] - value) < 0.08
