"""Tests for the absorbed (monolithic) experiment scaffolding."""

import numpy as np

from repro.absorbed import build_absorbed_network, run_absorbed_experiment
from repro.absorbed.monolithic import INPUT_PIXELS
from repro.eedn import core_count


class TestNetwork:
    def test_input_width(self):
        network = build_absorbed_network(hidden=(32,), rng=0)
        assert network.layers[0].n_in == INPUT_PIXELS == 8192

    def test_outputs_binary(self):
        network = build_absorbed_network(hidden=(32,), rng=0)
        assert network.layers[-1].n_out == 2

    def test_core_budget_substantial(self):
        """The monolithic raw-pixel network costs far more cores than the
        feature-based classifier (the paper's resource framing)."""
        network = build_absorbed_network(hidden=(1024, 256), rng=0)
        cores, _ = core_count(network, (INPUT_PIXELS,))
        assert cores > 100


class TestExperiment:
    def _windows(self, n, seed):
        rng = np.random.default_rng(seed)
        # Raw noise windows: a task with no learnable structure, which
        # must never be reported as "useful".
        windows = rng.random((n, 128, 64))
        labels = rng.integers(0, 2, n)
        return windows, labels

    def test_noise_task_is_not_useful(self):
        train_w, train_l = self._windows(40, 0)
        test_w, test_l = self._windows(30, 1)
        network = build_absorbed_network(hidden=(64,), rng=0)
        outcome = run_absorbed_experiment(
            train_w, train_l, test_w, test_l, network=network, rng=2
        )
        assert not outcome.useful
        assert outcome.n_train == 40
        assert 0.0 <= outcome.test_accuracy <= 1.0

    def test_blind_flag_consistency(self):
        train_w, train_l = self._windows(30, 3)
        test_w, test_l = self._windows(20, 4)
        network = build_absorbed_network(hidden=(32,), rng=5)
        outcome = run_absorbed_experiment(
            train_w, train_l, test_w, test_l, network=network, rng=6
        )
        if outcome.blind:
            assert outcome.test_majority_fraction >= 0.9

    def test_flattened_input_accepted(self):
        train_w, train_l = self._windows(20, 7)
        network = build_absorbed_network(hidden=(32,), rng=8)
        outcome = run_absorbed_experiment(
            train_w.reshape(20, -1),
            train_l,
            train_w.reshape(20, -1),
            train_l,
            network=network,
            rng=9,
        )
        assert outcome.cores > 0
