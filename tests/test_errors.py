"""Tests for the repro.errors hierarchy.

Once requests cross worker boundaries, errors must survive pickling
(``concurrent.futures`` and multiprocessing both round-trip exceptions),
so every public error class is checked for importability, lineage, and
pickle fidelity.
"""

import pickle

import pytest

import repro.errors as errors_module
from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)

PUBLIC_ERRORS = [
    getattr(errors_module, name)
    for name in errors_module.__all__
]


class TestHierarchy:
    def test_all_lists_every_exception_defined(self):
        defined = {
            name
            for name, value in vars(errors_module).items()
            if isinstance(value, type) and issubclass(value, Exception)
        }
        assert defined == set(errors_module.__all__)

    @pytest.mark.parametrize("cls", PUBLIC_ERRORS, ids=lambda c: c.__name__)
    def test_importable_from_repro_errors(self, cls):
        module = __import__("repro.errors", fromlist=[cls.__name__])
        assert getattr(module, cls.__name__) is cls

    @pytest.mark.parametrize("cls", PUBLIC_ERRORS, ids=lambda c: c.__name__)
    def test_subclasses_repro_error(self, cls):
        assert issubclass(cls, ReproError)
        assert issubclass(cls, Exception)

    def test_service_errors_share_branch(self):
        for cls in (QueueFullError, DeadlineExceededError, ServiceClosedError):
            assert issubclass(cls, ServiceError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise QueueFullError("full")


class TestPickling:
    @pytest.mark.parametrize("cls", PUBLIC_ERRORS, ids=lambda c: c.__name__)
    def test_round_trips_through_pickle(self, cls):
        original = cls("something went wrong", 42)
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is cls
        assert clone.args == original.args
        assert str(clone) == str(original)

    @pytest.mark.parametrize("cls", PUBLIC_ERRORS, ids=lambda c: c.__name__)
    def test_round_trips_inside_tuple_payload(self, cls):
        """The shape futures actually ship: (type, args) inside a result."""
        payload = {"error": cls("deadline at 1.5s"), "request_id": 7}
        clone = pickle.loads(pickle.dumps(payload))
        assert isinstance(clone["error"], cls)
        assert clone["error"].args == ("deadline at 1.5s",)
