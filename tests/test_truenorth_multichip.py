"""Multi-chip placement accounting across all three engines.

PR-8's scale-out tier routes spikes between simulated chips, so the
activity ledgers must split router traffic into intra- vs cross-chip
hops — and the split must be *bit-identical* across the reference,
batch, and event engines, clean and under routing faults, because the
sharded serving tier re-records worker ledgers as if they were local.

Invariants under test:

- ``intra_chip_hops + cross_chip_hops == router_hops`` always (the
  intra column is derived, so this holds by construction — what is
  really tested is that ``cross_chip_hops`` never exceeds the hops).
- A single-chip placement has zero cross-chip hops; a one-core-per-chip
  placement of a chain topology makes *every* hop cross-chip.
- The split is identical whichever engine produced the ledger.
- Placement changes accounting only: probe rasters and spike totals are
  bit-identical with and without a placement applied.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import DroppedSpikes, DuplicatedSpikes, FaultPlan
from repro.truenorth import (
    ChipTopology,
    apply_best_placement,
    fabric_hop_cost,
)
from repro.truenorth.placement import best_placement
from repro.truenorth.simulator import Simulator

from tests.engine_systems import random_system, shared_inputs, batched_inputs

ALL_ENGINES = ("reference", "batch", "event")
TICKS = 24

FAULT_PLANS = {
    "clean": None,
    "drop": FaultPlan((DroppedSpikes(0.3),), seed=11),
    "dup": FaultPlan((DuplicatedSpikes(0.4),), seed=12),
    "drop_dup": FaultPlan(
        (DroppedSpikes(0.2), DuplicatedSpikes(0.3)), seed=13
    ),
}


def _chain_system():
    """A 4-core deterministic chain (every route goes core i -> i+1)."""
    return random_system(21, n_cores=4, stochastic_fraction=0.0)


def _placed_sim(engine, cores_per_chip=2, faults=None):
    system = _chain_system()
    report = apply_best_placement(system, cores_per_chip=cores_per_chip)
    sim = Simulator(system, rng=123, engine=engine, faults=faults)
    return sim, report


class TestChipAssignment:
    def test_default_assignment_is_single_chip(self):
        system = _chain_system()
        assert system.chip_count == 1
        assert all(system.chip_of(c) == 0 for c in range(4))

    def test_apply_placement_spans_chips(self):
        system = _chain_system()
        report = apply_best_placement(system, cores_per_chip=2)
        chips = {system.chip_of(core) for core in range(4)}
        assert len(chips) == 2
        assert system.chip_count == 2
        assert system.chip_assignment == report.assignment

    def test_apply_placement_rejects_unknown_core(self):
        system = _chain_system()
        with pytest.raises(ConfigurationError, match="unknown core"):
            system.apply_placement({99: 0})

    def test_apply_placement_rejects_negative_chip(self):
        system = _chain_system()
        with pytest.raises(ConfigurationError, match="chip"):
            system.apply_placement({0: -1})

    def test_accepts_placement_report_directly(self):
        system = _chain_system()
        report = best_placement(system, cores_per_chip=2)
        system.apply_placement(report)
        assert system.chip_assignment == report.assignment


class TestChipTopology:
    def test_same_chip_is_free(self):
        assert ChipTopology().hops_between(3, 3) == 0

    def test_siblings_cost_one_round_trip(self):
        # chips 0..3 share a fanout-4 switch: up one level and down.
        assert ChipTopology(fanout=4).hops_between(0, 3) == 2

    def test_cousins_climb_two_levels(self):
        assert ChipTopology(fanout=4).hops_between(0, 4) == 4

    def test_binary_fanout_grows_depth(self):
        assert ChipTopology(fanout=2).hops_between(0, 3) == 4

    def test_fabric_hop_cost_zero_on_one_chip(self):
        system = _chain_system()
        report = best_placement(system, cores_per_chip=4)
        assert fabric_hop_cost(system, report) == 0

    def test_fabric_hop_cost_counts_crossings(self):
        system = _chain_system()
        report = best_placement(system, cores_per_chip=1)
        assert fabric_hop_cost(system, report) > 0


class TestHopSplitSemantics:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_single_chip_has_zero_cross_hops(self, engine):
        system = _chain_system()
        sim = Simulator(system, rng=123, engine=engine)
        inputs = shared_inputs(system, TICKS, 7, 0.3)
        activity = sim.run(TICKS, inputs).activity
        assert int(activity.cross_chip_hops.sum()) == 0
        np.testing.assert_array_equal(
            activity.intra_chip_hops, activity.router_hops
        )

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_one_core_per_chip_makes_every_hop_cross(self, engine):
        sim, _ = _placed_sim(engine, cores_per_chip=1)
        inputs = shared_inputs(sim.system, TICKS, 7, 0.3)
        activity = sim.run(TICKS, inputs).activity
        assert int(activity.router_hops.sum()) > 0
        np.testing.assert_array_equal(
            activity.cross_chip_hops, activity.router_hops
        )
        assert int(activity.intra_chip_hops.sum()) == 0

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_split_sums_to_router_hops(self, engine, fault):
        sim, _ = _placed_sim(engine, cores_per_chip=2, faults=FAULT_PLANS[fault])
        inputs = shared_inputs(sim.system, TICKS, 7, 0.3)
        activity = sim.run(TICKS, inputs).activity
        np.testing.assert_array_equal(
            activity.intra_chip_hops + activity.cross_chip_hops,
            activity.router_hops,
        )
        assert (activity.cross_chip_hops >= 0).all()
        assert (activity.intra_chip_hops >= 0).all()

    def test_two_chip_chain_splits_strictly(self):
        """cores 0|1 and 2|3: only the 1->2 leg crosses, others stay."""
        sim, _ = _placed_sim("reference", cores_per_chip=2)
        inputs = shared_inputs(sim.system, TICKS, 7, 0.5)
        activity = sim.run(TICKS, inputs).activity
        assert int(activity.cross_chip_hops.sum()) > 0
        assert int(activity.intra_chip_hops.sum()) > 0


class TestCrossEngineConformance:
    """The multi-chip ledgers join the bit-identity contract."""

    @pytest.mark.parametrize("engine", ("batch", "event"))
    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_hop_split_matches_reference(self, engine, fault):
        ref_sim, _ = _placed_sim(
            "reference", cores_per_chip=2, faults=FAULT_PLANS[fault]
        )
        got_sim, _ = _placed_sim(
            engine, cores_per_chip=2, faults=FAULT_PLANS[fault]
        )
        inputs = shared_inputs(ref_sim.system, TICKS, 7, 0.3)
        ref = ref_sim.run(TICKS, inputs)
        got = got_sim.run(TICKS, inputs)
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        for field in ("router_hops", "cross_chip_hops", "intra_chip_hops"):
            np.testing.assert_array_equal(
                getattr(ref.activity, field),
                getattr(got.activity, field),
                err_msg=f"{field} ({engine}, {fault})",
            )

    @pytest.mark.parametrize("engine", ("batch", "event"))
    def test_batched_hop_split_matches_reference(self, engine):
        batch = 5
        ref_sim, _ = _placed_sim("reference", cores_per_chip=2)
        got_sim, _ = _placed_sim(engine, cores_per_chip=2)
        inputs = batched_inputs(ref_sim.system, TICKS, batch, 7, 0.3)
        ref = ref_sim.run_batch(TICKS, inputs)
        got = got_sim.run_batch(TICKS, inputs)
        for field in ("router_hops", "cross_chip_hops", "intra_chip_hops"):
            np.testing.assert_array_equal(
                getattr(ref.activity, field),
                getattr(got.activity, field),
                err_msg=field,
            )

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_placement_does_not_change_results(self, engine):
        """Chip assignment is pure accounting: spikes are untouched."""
        unplaced = Simulator(_chain_system(), rng=123, engine=engine)
        placed, _ = _placed_sim(engine, cores_per_chip=2)
        inputs = shared_inputs(unplaced.system, TICKS, 7, 0.3)
        ref = unplaced.run(TICKS, inputs)
        got = placed.run(TICKS, inputs)
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        assert ref.total_spikes == got.total_spikes
        np.testing.assert_array_equal(
            ref.activity.router_hops, got.activity.router_hops
        )
