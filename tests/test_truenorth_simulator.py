"""Tests for the tick-level simulator."""

import numpy as np
import pytest

from repro.truenorth.simulator import Simulator
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import NeuronParameters


def _identity_chain(n_cores: int) -> NeurosynapticSystem:
    """A chain of cores, each relaying axon 0 to neuron 0."""
    system = NeurosynapticSystem()
    params = NeuronParameters(weights=(1, 0, 0, 0), threshold=1)
    for index in range(n_cores):
        core = system.new_core(f"c{index}")
        core.set_axon_type(0, 0)
        core.set_neuron(0, params)
        core.connect(0, 0)
        if index:
            system.add_route(index - 1, 0, index, 0)
    system.add_input_port("in", [[(0, 0)]])
    system.add_output_probe("out", [(n_cores - 1, 0)])
    return system


class TestBasics:
    def test_identity_relay_latency(self):
        system = _identity_chain(3)
        sim = Simulator(system, rng=0)
        raster = np.zeros((8, 1), dtype=bool)
        raster[0, 0] = True
        result = sim.run(8, {"in": raster})
        spikes = np.flatnonzero(result.probe_spikes["out"][:, 0])
        # Input lands on core 0 at tick 0; each hop adds one tick.
        assert list(spikes) == [2]

    def test_spike_count_conservation(self):
        system = _identity_chain(2)
        sim = Simulator(system, rng=0)
        raster = np.zeros((10, 1), dtype=bool)
        raster[[0, 3, 6], 0] = True
        result = sim.run(10, {"in": raster})
        assert result.spike_counts("out")[0] == 3

    def test_total_spikes_counted(self):
        system = _identity_chain(2)
        sim = Simulator(system, rng=0)
        raster = np.ones((5, 1), dtype=bool)
        result = sim.run(5, {"in": raster})
        # Core 0 fires 5 times, core 1 fires 4 (one tick of latency).
        assert result.total_spikes == 9

    def test_zero_ticks(self):
        system = _identity_chain(1)
        result = Simulator(system).run(0)
        assert result.ticks == 0
        with pytest.raises(ValueError):
            result.spike_rates("out")

    def test_rates(self):
        system = _identity_chain(1)
        sim = Simulator(system, rng=0)
        raster = np.zeros((10, 1), dtype=bool)
        raster[::2, 0] = True
        result = sim.run(10, {"in": raster})
        assert np.isclose(result.spike_rates("out")[0], 0.5)


class TestValidation:
    def test_unknown_port(self):
        system = _identity_chain(1)
        with pytest.raises(ValueError, match="unknown input port"):
            Simulator(system).run(2, {"nope": np.zeros((2, 1), dtype=bool)})

    def test_bad_raster_shape(self):
        system = _identity_chain(1)
        with pytest.raises(ValueError, match="raster"):
            Simulator(system).run(2, {"in": np.zeros((3, 1), dtype=bool)})

    def test_negative_ticks(self):
        system = _identity_chain(1)
        with pytest.raises(ValueError):
            Simulator(system).run(-1)


class TestReset:
    def test_reset_between_runs(self):
        system = NeurosynapticSystem()
        core = system.new_core()
        core.set_axon_type(0, 0)
        core.set_neuron(0, NeuronParameters(weights=(1, 0, 0, 0), threshold=3))
        core.connect(0, 0)
        system.add_input_port("in", [[(0, 0)]])
        system.add_output_probe("out", [(0, 0)])
        sim = Simulator(system, rng=0)
        raster = np.ones((2, 1), dtype=bool)
        first = sim.run(2, {"in": raster})
        second = sim.run(2, {"in": raster})
        assert first.spike_counts("out")[0] == 0
        assert second.spike_counts("out")[0] == 0  # reset wiped the charge

    def test_no_reset_carries_state(self):
        system = NeurosynapticSystem()
        core = system.new_core()
        core.set_axon_type(0, 0)
        core.set_neuron(0, NeuronParameters(weights=(1, 0, 0, 0), threshold=3))
        core.connect(0, 0)
        system.add_input_port("in", [[(0, 0)]])
        system.add_output_probe("out", [(0, 0)])
        sim = Simulator(system, rng=0)
        raster = np.ones((2, 1), dtype=bool)
        sim.run(2, {"in": raster})
        result = sim.run(2, {"in": raster}, reset=False)
        assert result.spike_counts("out")[0] == 1  # 4th input crosses 3


class TestMultiLinePorts:
    def test_fanout_port_drives_many_axons(self):
        system = NeurosynapticSystem()
        core = system.new_core()
        for axon in range(3):
            core.set_axon_type(axon, 0)
            core.connect(axon, 0)
        core.set_neuron(0, NeuronParameters(weights=(1, 0, 0, 0), threshold=3))
        system.add_input_port("in", [[(0, 0), (0, 1), (0, 2)]])
        system.add_output_probe("out", [(0, 0)])
        sim = Simulator(system, rng=0)
        raster = np.ones((1, 1), dtype=bool)
        result = sim.run(1, {"in": raster})
        assert result.spike_counts("out")[0] == 1  # one line -> 3 axons -> fires
