"""Tests for the parrot data generator, trainer, extractor, and fidelity."""

import numpy as np
import pytest

from repro.napprox.software import N_DIRECTIONS
from repro.parrot import (
    ParrotExtractor,
    ParrotFeatureConfig,
    generate_parrot_samples,
    parrot_fidelity,
)
from repro.parrot.trainer import sigmoid_rates


class TestDatagen:
    def test_shapes(self):
        dataset = generate_parrot_samples(50, rng=0)
        assert dataset.inputs.shape == (50, 64)
        assert dataset.targets.shape == (50, 18)
        assert dataset.angle_labels.shape == (50,)
        assert len(dataset) == 50

    def test_inputs_in_unit_range(self):
        dataset = generate_parrot_samples(100, rng=1)
        assert dataset.inputs.min() >= 0.0
        assert dataset.inputs.max() <= 1.0

    def test_targets_are_rates(self):
        dataset = generate_parrot_samples(100, rng=2)
        assert dataset.targets.min() >= 0.0
        assert dataset.targets.max() <= 1.0

    def test_labels_match_target_argmax(self):
        dataset = generate_parrot_samples(80, rng=3)
        edgy = dataset.targets.sum(axis=1) > 0
        assert np.array_equal(
            dataset.angle_labels[edgy], dataset.targets[edgy].argmax(axis=1)
        )

    def test_contains_varied_densities(self):
        """Samples vary in their ratio of bright to dark pixels (the
        paper's offset-robustness requirement)."""
        dataset = generate_parrot_samples(200, rng=4)
        means = dataset.inputs.mean(axis=1)
        assert means.std() > 0.1

    def test_reproducible(self):
        a = generate_parrot_samples(10, rng=5).inputs
        b = generate_parrot_samples(10, rng=5).inputs
        assert np.array_equal(a, b)

    def test_count_validated(self):
        with pytest.raises(ValueError):
            generate_parrot_samples(0)


class TestTrainer:
    def test_training_learns_structure(self, tiny_parrot):
        _, _, diagnostics = tiny_parrot
        assert diagnostics["angle_within_one_bin"] > 0.3
        # The rate-matching loss sums over 18 bins; ~5 is near chance.
        assert diagnostics["final_loss"] < 4.5

    def test_network_shape(self, tiny_parrot):
        network, _, _ = tiny_parrot
        assert network.layers[0].n_in == 64
        assert network.layers[-1].n_out == 18

    def test_sigmoid_rates_range(self):
        rates = sigmoid_rates(np.array([-100.0, 0.0, 100.0]))
        assert np.allclose(rates, [0.0, 0.5, 1.0], atol=1e-6)


class TestExtractor:
    def test_cell_grid_shape(self, tiny_parrot_extractor):
        image = np.random.default_rng(0).random((32, 24))
        grid = tiny_parrot_extractor.cell_grid(image)
        assert grid.shape == (4, 3, 18)

    def test_histograms_commensurate_with_counts(self, tiny_parrot_extractor):
        image = np.random.default_rng(1).random((16, 16))
        grid = tiny_parrot_extractor.cell_grid(image)
        assert grid.min() >= 0.0
        assert grid.max() <= 64.0

    def test_spiking_mode_bounds(self, tiny_parrot):
        network, _, _ = tiny_parrot
        extractor = ParrotExtractor(
            network, ParrotFeatureConfig(spikes=8), rng=0
        )
        cells = np.random.default_rng(2).random((5, 64))
        histograms = extractor.cell_histograms_batch(cells)
        # 8-tick rates are multiples of 1/8 scaled by 64.
        assert np.allclose(histograms % 8.0, 0.0)

    def test_with_spikes_copy(self, tiny_parrot_extractor):
        spiking = tiny_parrot_extractor.with_spikes(4)
        assert spiking.config.spikes == 4
        assert tiny_parrot_extractor.config.spikes is None

    def test_with_normalization_copy(self, tiny_parrot_extractor):
        normed = tiny_parrot_extractor.with_normalization("l2")
        assert normed.config.normalization == "l2"

    def test_feature_length(self, tiny_parrot_extractor):
        assert tiny_parrot_extractor.feature_length((128, 64)) == 7560

    def test_cores_per_cell_near_paper(self, tiny_parrot):
        network, _, _ = tiny_parrot
        extractor = ParrotExtractor(network)
        # The session fixture uses a small hidden layer; the paper-scale
        # 512-hidden network lands at 6-10 cores (paper: 8).
        assert extractor.cores_per_cell() >= 2

    def test_cell_batch_validation(self, tiny_parrot_extractor):
        with pytest.raises(ValueError):
            tiny_parrot_extractor.cell_histograms_batch(np.zeros((2, 63)))

    def test_invalid_spikes(self, tiny_parrot):
        network, _, _ = tiny_parrot
        with pytest.raises(ValueError):
            ParrotExtractor(network, ParrotFeatureConfig(spikes=0))


class TestTrueNorthBackend:
    def test_engines_agree_bitwise(self, tiny_parrot):
        network, _, _ = tiny_parrot
        cells = np.random.default_rng(3).random((4, 64))
        histograms = {
            engine: ParrotExtractor(
                network,
                ParrotFeatureConfig(spikes=4),
                rng=7,
                backend="truenorth",
                engine=engine,
            ).cell_histograms_batch(cells)
            for engine in ("batch", "reference")
        }
        np.testing.assert_array_equal(
            histograms["batch"], histograms["reference"]
        )
        assert histograms["batch"].shape == (4, N_DIRECTIONS)

    def test_histograms_commensurate_with_counts(self, tiny_parrot):
        network, _, _ = tiny_parrot
        extractor = ParrotExtractor(
            network, ParrotFeatureConfig(spikes=4), rng=0, backend="truenorth"
        )
        histograms = extractor.cell_histograms_batch(
            np.random.default_rng(4).random((3, 64))
        )
        # 4-tick rates are multiples of 1/4 scaled by 64.
        assert np.allclose(histograms % 16.0, 0.0)
        assert histograms.min() >= 0.0 and histograms.max() <= 64.0

    def test_cell_grid_shape(self, tiny_parrot):
        network, _, _ = tiny_parrot
        extractor = ParrotExtractor(
            network, ParrotFeatureConfig(spikes=2), rng=0, backend="truenorth"
        )
        grid = extractor.cell_grid(np.random.default_rng(5).random((16, 24)))
        assert grid.shape == (2, 3, N_DIRECTIONS)

    def test_empty_batch(self, tiny_parrot):
        network, _, _ = tiny_parrot
        extractor = ParrotExtractor(
            network, ParrotFeatureConfig(spikes=2), rng=0, backend="truenorth"
        )
        assert extractor.cell_histograms_batch(np.zeros((0, 64))).shape == (
            0,
            N_DIRECTIONS,
        )

    def test_copies_preserve_backend(self, tiny_parrot):
        network, _, _ = tiny_parrot
        extractor = ParrotExtractor(
            network, ParrotFeatureConfig(spikes=2), rng=0, backend="truenorth"
        )
        assert extractor.with_normalization("l2").backend == "truenorth"
        assert extractor.with_spikes(4).backend == "truenorth"
        # Dropping spike coding forces the analog numpy path.
        assert extractor.with_spikes(None).backend == "numpy"

    def test_requires_spike_coding(self, tiny_parrot):
        network, _, _ = tiny_parrot
        with pytest.raises(ValueError, match="spikes"):
            ParrotExtractor(network, ParrotFeatureConfig(), backend="truenorth")

    def test_rejects_unknown_backend(self, tiny_parrot):
        network, _, _ = tiny_parrot
        with pytest.raises(ValueError, match="backend"):
            ParrotExtractor(network, backend="fpga")


class TestFidelity:
    def test_analog_beats_one_spike(self, tiny_parrot_extractor):
        analog = parrot_fidelity(tiny_parrot_extractor, n_cells=80, rng=9)
        one_spike = parrot_fidelity(
            tiny_parrot_extractor.with_spikes(1), n_cells=80, rng=9
        )
        assert analog.correlation > one_spike.correlation

    def test_report_fields(self, tiny_parrot_extractor):
        report = parrot_fidelity(tiny_parrot_extractor, n_cells=50, rng=10)
        assert report.n_cells == 50
        assert 0.0 <= report.dominant_bin_agreement <= 1.0
        assert report.mean_absolute_error >= 0.0

    def test_cells_validated(self, tiny_parrot_extractor):
        with pytest.raises(ValueError):
            parrot_fidelity(tiny_parrot_extractor, n_cells=1)
