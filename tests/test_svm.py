"""Tests for the linear SVM solvers and hard-negative mining."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.svm import HardNegativeMiner, LinearSVM


def _separable(n=100, gap=1.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 5))
    w = np.array([1.0, -2.0, 0.5, 0.0, 1.5])
    y = np.where(x @ w > 0, 1.0, -1.0)
    x += y[:, None] * gap * w / np.linalg.norm(w) / 2
    return x, y


class TestSolvers:
    @pytest.mark.parametrize("solver", ["dcd", "pegasos"])
    def test_separable_data_perfect(self, solver):
        x, y = _separable()
        model = LinearSVM(C=1.0, solver=solver, epochs=40, rng=0).fit(x, y)
        assert (model.predict(x) == y).mean() == 1.0

    def test_solvers_agree_on_margins(self):
        x, y = _separable(gap=2.0)
        dcd = LinearSVM(C=1.0, solver="dcd", epochs=60, rng=0).fit(x, y)
        pegasos = LinearSVM(C=1.0, solver="pegasos", epochs=60, rng=0).fit(x, y)
        correlation = np.corrcoef(
            dcd.decision_function(x), pegasos.decision_function(x)
        )[0, 1]
        assert correlation > 0.95

    def test_decision_function_single_vector(self):
        x, y = _separable()
        model = LinearSVM(rng=0).fit(x, y)
        score = model.decision_function(x[0])
        assert np.isscalar(score) or score.ndim == 0

    def test_bias_learned(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 3)) + 5.0  # all-positive cloud, offset split
        y = np.where(x[:, 0] > 5.0, 1.0, -1.0)
        model = LinearSVM(C=10.0, epochs=60, bias_scale=5.0, rng=0).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_regularisation_bounds_weights(self):
        x, y = _separable()
        tight = LinearSVM(C=1e-3, epochs=30, rng=0).fit(x, y)
        loose = LinearSVM(C=10.0, epochs=30, rng=0).fit(x, y)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)


class TestValidation:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.ones(3))

    def test_bad_labels(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.ones((4, 2)), np.array([0, 1, 0, 1]))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.ones((4, 2)), np.ones(4))

    def test_bad_c(self):
        with pytest.raises(ValueError):
            LinearSVM(C=0)

    def test_bad_solver(self):
        with pytest.raises(ValueError):
            LinearSVM(solver="smo")

    def test_feature_width_checked(self):
        x, y = _separable()
        model = LinearSVM(rng=0).fit(x, y)
        with pytest.raises(ValueError):
            model.decision_function(np.ones((2, 7)))

    @given(st.integers(min_value=10, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_training_accuracy_on_random_separable(self, n):
        x, y = _separable(n=n, gap=1.5, seed=n)
        if len(np.unique(y)) < 2:
            return
        model = LinearSVM(C=1.0, epochs=30, rng=0).fit(x, y)
        assert (model.predict(x) == y).mean() >= 0.95


class TestMining:
    def test_initial_fit_only(self):
        x, y = _separable()
        positives = x[y == 1]
        negatives = x[y == -1]
        miner = HardNegativeMiner(lambda: LinearSVM(epochs=20, rng=0), rounds=2)
        model = miner.fit(positives, negatives, scan_negatives=None)
        assert miner.report.rounds_run == 0
        assert (model.predict(positives) == 1).mean() > 0.9

    def test_mining_adds_negatives(self):
        x, y = _separable()
        positives = x[y == 1]
        negatives = x[y == -1][:10]
        extra = x[y == -1][10:]

        calls = []

        def scan(model):
            # Deterministic scanner: always surfaces five "hard" windows.
            calls.append(1)
            return extra[:5]

        miner = HardNegativeMiner(lambda: LinearSVM(epochs=20, rng=0), rounds=2)
        miner.fit(positives, negatives, scan)
        assert miner.report.rounds_run == 2
        assert miner.report.mined_per_round == [5, 5]
        assert miner.report.final_training_size == len(positives) + 20

    def test_cap_respected(self):
        x, y = _separable(n=200)
        positives = x[y == 1]
        negatives = x[y == -1][:5]

        def scan(model):
            return np.random.default_rng(0).normal(size=(500, 5))

        miner = HardNegativeMiner(
            lambda: LinearSVM(epochs=10, rng=0), rounds=1, max_new_per_round=20
        )
        miner.fit(positives, negatives, scan)
        assert miner.report.mined_per_round == [20]

    def test_empty_scan_stops(self):
        x, y = _separable()
        miner = HardNegativeMiner(lambda: LinearSVM(epochs=10, rng=0), rounds=3)
        miner.fit(x[y == 1], x[y == -1], lambda m: np.zeros((0, 5)))
        assert miner.report.rounds_run == 0

    def test_feature_width_mismatch(self):
        with pytest.raises(ValueError):
            HardNegativeMiner(lambda: LinearSVM(rng=0)).fit(
                np.ones((3, 4)), np.ones((3, 5))
            )
