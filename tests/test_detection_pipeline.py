"""Tests for the sliding-window detector and scorer adapters."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.detection import (
    EednBinaryScorer,
    SlidingWindowDetector,
    SpikingBinaryScorer,
    TrueNorthBinaryScorer,
)
from repro.eedn import (
    EednNetwork,
    SpikingEvaluator,
    ThresholdActivation,
    TrinaryDense,
)
from repro.hog import HogDescriptor, dalal_triggs_config
from repro.napprox import NApproxDescriptor
from repro.svm import LinearSVM


class _ConstantScorer:
    """Scores every window identically (test double)."""

    def __init__(self, value: float) -> None:
        self.value = value
        self.seen = 0

    def decision_function(self, features):
        self.seen += features.shape[0]
        return np.full(features.shape[0], self.value)


class TestFeatureAssembly:
    def test_window_features_length_blocks(self):
        detector = SlidingWindowDetector(HogDescriptor(), None)
        window = np.random.default_rng(0).random((128, 64))
        assert detector.window_features(window).shape == (3780,)

    def test_window_features_length_cells(self):
        detector = SlidingWindowDetector(
            NApproxDescriptor(), None, feature_mode="cells"
        )
        window = np.random.default_rng(0).random((128, 64))
        assert detector.window_features(window).shape == (16 * 8 * 18,)

    def test_grid_features_match_window_features(self):
        """Sliding assembly over a whole image equals per-window compute."""
        extractor = HogDescriptor(dalal_triggs_config())
        detector = SlidingWindowDetector(extractor, None)
        image = np.random.default_rng(1).random((144, 96))
        grid = extractor.cell_grid(image)
        features, positions = detector._grid_features(grid)
        # Window at cell (1, 2) -> pixels [8:136, 16:80].
        index = np.where((positions == [1, 2]).all(axis=1))[0][0]
        direct = detector.window_features(image[8:136, 16:80])
        # Border cells differ (full-image gradients have true neighbours,
        # the crop edge-pads); interior blocks must agree exactly.
        slid = features[index].reshape(15, 7, 36)[1:-1, 1:-1]
        solo = direct.reshape(15, 7, 36)[1:-1, 1:-1]
        assert np.allclose(slid, solo)

    def test_cell_scale_applied(self):
        extractor = NApproxDescriptor()
        detector = SlidingWindowDetector(
            extractor, None, feature_mode="cells", cell_scale=0.5
        )
        image = np.tile(np.linspace(0, 1, 128), (128, 1))
        grid = extractor.cell_grid(image)
        features, _ = detector._grid_features(grid)
        unscaled = SlidingWindowDetector(
            extractor, None, feature_mode="cells", cell_scale=1.0
        )._grid_features(grid)[0]
        assert np.allclose(features * 2.0, unscaled)

    def test_bad_feature_mode(self):
        with pytest.raises(ValueError):
            SlidingWindowDetector(HogDescriptor(), None, feature_mode="pixels")


class TestDetection:
    def test_no_detections_below_threshold(self):
        scorer = _ConstantScorer(-1.0)
        detector = SlidingWindowDetector(
            HogDescriptor(), scorer, score_threshold=0.0
        )
        image = np.random.default_rng(2).random((160, 120))
        assert detector.detect(image) == []
        assert scorer.seen > 0  # windows were scored

    def test_nms_collapses_constant_scores(self):
        scorer = _ConstantScorer(1.0)
        detector = SlidingWindowDetector(
            HogDescriptor(), scorer, score_threshold=0.0, nms_epsilon=0.2
        )
        image = np.random.default_rng(2).random((160, 120))
        detections = detector.detect(image)
        assert 0 < len(detections) < scorer.seen

    def test_boxes_scale_with_pyramid(self):
        scorer = _ConstantScorer(1.0)
        detector = SlidingWindowDetector(
            HogDescriptor(), scorer, score_threshold=0.0
        )
        image = np.random.default_rng(2).random((256, 192))
        boxes, _, _ = detector._scan(image, collect_features=False)
        widths = {round(w) for w in boxes[:, 2]}
        assert len(widths) > 1  # windows were scored at multiple scales
        assert min(widths) == 64

    def test_detect_boxes_arrays(self):
        scorer = _ConstantScorer(-1.0)
        detector = SlidingWindowDetector(HogDescriptor(), scorer)
        boxes, scores = detector.detect_boxes(np.zeros((140, 100)))
        assert boxes.shape == (0, 4)
        assert scores.shape == (0,)

    def test_svm_end_to_end_smoke(self, small_split):
        extractor = HogDescriptor()
        detector = SlidingWindowDetector(extractor, None)
        positives = np.stack(
            [detector.window_features(w) for w in small_split.positive_windows[:20]]
        )
        negatives = np.stack(
            [detector.window_features(w) for w in small_split.negative_windows[:40]]
        )
        model = LinearSVM(C=0.1, epochs=10, rng=0).fit(
            np.vstack([positives, negatives]),
            np.concatenate([np.ones(20), -np.ones(40)]),
        )
        armed = SlidingWindowDetector(extractor, model, score_threshold=0.0)
        scene = small_split.test_scenes[0]
        detections = armed.detect(scene.image)
        assert isinstance(detections, list)

    def test_hard_negative_features_shape(self, small_split):
        scorer = _ConstantScorer(1.0)
        detector = SlidingWindowDetector(HogDescriptor(), scorer)
        mined = detector.hard_negative_features(
            small_split.negative_images[:1], per_image_cap=5
        )
        assert mined.shape == (5, 3780)

    def test_hard_negative_empty_when_model_clean(self, small_split):
        scorer = _ConstantScorer(-1.0)
        detector = SlidingWindowDetector(HogDescriptor(), scorer)
        mined = detector.hard_negative_features(small_split.negative_images[:1])
        assert mined.shape == (0, 3780)


class _SummingScorer:
    """Per-row score = feature sum (order-insensitive, chunking-agnostic)."""

    def __init__(self):
        self.calls = []

    def decision_function(self, features):
        self.calls.append(features.shape[0])
        return features.sum(axis=1)


class _ShrinkingExtractor:
    """Extractor whose deeper pyramid levels yield too few cells.

    Images below 110 px tall produce a 2x2 cell grid — smaller than the
    8x8-cell window — so those levels contribute zero windows while the
    pyramid itself still emits them.
    """

    config = SimpleNamespace(cell_size=8, n_bins=2)

    def cell_grid(self, image):
        h, w = image.shape
        if h < 110:
            return np.zeros((2, 2, 2))
        gy, gx = h // 8, w // 8
        rng = np.random.default_rng(gy * 1000 + gx)
        return rng.random((gy, gx, 2))


class TestChunking:
    def test_chunk_size_below_one_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            SlidingWindowDetector(HogDescriptor(), None, chunk_size=0)

    def test_chunk_size_larger_than_window_count(self):
        """One chunk covering every window scores identically to many."""
        image = np.random.default_rng(5).random((144, 80))
        results = {}
        for chunk_size in (1, 7, 10**6):
            scorer = _SummingScorer()
            detector = SlidingWindowDetector(
                HogDescriptor(),
                scorer,
                score_threshold=-1e9,
                chunk_size=chunk_size,
            )
            boxes, scores, _ = detector._scan(image, collect_features=False)
            results[chunk_size] = (boxes, scores)
            assert max(scorer.calls) <= chunk_size
        reference_boxes, reference_scores = results[1]
        assert reference_scores.size > 0
        for chunk_size in (7, 10**6):
            boxes, scores = results[chunk_size]
            np.testing.assert_array_equal(reference_boxes, boxes)
            np.testing.assert_array_equal(reference_scores, scores)

    def test_oversized_chunk_uses_single_call_per_level(self):
        scorer = _SummingScorer()
        detector = SlidingWindowDetector(
            HogDescriptor(), scorer, score_threshold=-1e9, chunk_size=10**6
        )
        detector._scan(
            np.random.default_rng(6).random((128, 64)), collect_features=False
        )
        assert scorer.calls == [1]  # one window, one call, no empty chunks

    def test_empty_pyramid_level_skipped(self):
        """A level with zero windows is skipped, not crashed on."""
        scorer = _SummingScorer()
        detector = SlidingWindowDetector(
            _ShrinkingExtractor(),
            scorer,
            feature_mode="cells",
            window_shape=(64, 64),
            score_threshold=-1e9,
            max_levels=10,
        )
        image = np.random.default_rng(7).random((120, 120))
        boxes, scores, _ = detector._scan(image, collect_features=False)
        # Level 0 (120 px) has cells; downscaled levels (109 px and
        # below) shrink to a 2x2 grid and contribute nothing.
        assert scores.size > 0
        assert (boxes[:, 2] == 64.0).all()  # every box is a level-0 box

    def test_all_levels_empty_yields_no_detections(self):
        scorer = _SummingScorer()
        detector = SlidingWindowDetector(
            _ShrinkingExtractor(),
            scorer,
            feature_mode="cells",
            window_shape=(64, 64),
            score_threshold=-1e9,
        )
        image = np.random.default_rng(8).random((80, 80))  # every level < 110
        assert detector.detect(image) == []
        assert scorer.calls == []  # the classifier was never invoked

    def test_empty_level_with_feature_collection(self):
        detector = SlidingWindowDetector(
            _ShrinkingExtractor(),
            _SummingScorer(),
            feature_mode="cells",
            window_shape=(64, 64),
            score_threshold=-1e9,
        )
        image = np.random.default_rng(9).random((120, 120))
        boxes, scores, features = detector._scan(image, collect_features=True)
        assert features.shape == (scores.size, 8 * 8 * 2)


class TestScorers:
    def _classifier(self):
        return EednNetwork(
            [
                TrinaryDense(2304, 32, rng=0),
                ThresholdActivation(0.0),
                TrinaryDense(32, 2, rng=1),
            ]
        )

    def test_eedn_scorer_margin(self):
        network = self._classifier()
        scorer = EednBinaryScorer(network, positive_class=1)
        features = np.random.default_rng(0).random((4, 2304))
        logits = network.forward(features)
        margins = scorer.decision_function(features)
        assert np.allclose(margins, logits[:, 1] - logits[:, 0])

    def test_spiking_scorer_counts(self):
        network = self._classifier()
        evaluator = SpikingEvaluator(network, ticks=8, rng=0)
        scorer = SpikingBinaryScorer(evaluator)
        margins = scorer.decision_function(
            np.random.default_rng(1).random((3, 2304))
        )
        assert margins.shape == (3,)
        assert np.abs(margins).max() <= 8

    def _small_classifier(self):
        return EednNetwork(
            [
                TrinaryDense(36, 16, rng=0),
                ThresholdActivation(0.0),
                TrinaryDense(16, 2, rng=1),
            ]
        )

    def test_truenorth_scorer_engines_agree_bitwise(self):
        features = np.random.default_rng(2).random((6, 36))
        margins = {
            engine: TrueNorthBinaryScorer(
                self._small_classifier(), ticks=8, rng=5, engine=engine
            ).decision_function(features)
            for engine in ("batch", "reference")
        }
        np.testing.assert_array_equal(margins["batch"], margins["reference"])
        assert margins["batch"].shape == (6,)
        assert np.abs(margins["batch"]).max() <= 8

    def test_truenorth_scorer_empty_chunk(self):
        scorer = TrueNorthBinaryScorer(self._small_classifier(), ticks=4, rng=0)
        assert scorer.decision_function(np.zeros((0, 36))).shape == (0,)

    def test_truenorth_scorer_validates_width(self):
        scorer = TrueNorthBinaryScorer(self._small_classifier(), ticks=4, rng=0)
        with pytest.raises(ValueError, match="features"):
            scorer.decision_function(np.zeros((2, 7)))

    def test_truenorth_scorer_deterministic_per_seed(self):
        features = np.random.default_rng(3).random((4, 36))
        first = TrueNorthBinaryScorer(
            self._small_classifier(), ticks=8, rng=11
        ).decision_function(features)
        second = TrueNorthBinaryScorer(
            self._small_classifier(), ticks=8, rng=11
        ).decision_function(features)
        np.testing.assert_array_equal(first, second)
