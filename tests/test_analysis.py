"""Tests for the report renderers."""

import numpy as np
import pytest

from repro.analysis import format_curve_table, format_sig, format_table


class TestFormatSig:
    def test_three_significant_figures(self):
        assert format_sig(0.123456) == "0.123"
        assert format_sig(123.456) == "123"
        assert format_sig(0.000123456) == "0.000123"

    def test_zero(self):
        assert format_sig(0.0) == "0"

    def test_non_finite(self):
        assert format_sig(float("inf")) == "inf"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_cell_count_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_values_stringified(self):
        table = format_table(["x"], [[3.5]])
        assert "3.5" in table


class TestCurveTable:
    def test_min_y_at_or_below_sample(self):
        curves = {
            "a": (np.array([0.05, 0.5, 2.0]), np.array([0.9, 0.5, 0.1])),
        }
        table = format_curve_table(curves, x_samples=(0.1, 1.0))
        lines = table.splitlines()
        assert "0.900" in lines[2]  # at fppi 0.1 only the first point qualifies
        assert "0.500" in lines[3]

    def test_unreached_sample_reports_one(self):
        curves = {"a": (np.array([5.0]), np.array([0.2]))}
        table = format_curve_table(curves, x_samples=(0.01,))
        assert table.splitlines()[-1].split()[-1] == "1"
