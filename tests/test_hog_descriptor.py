"""Tests for the HoG descriptor assembly and configurations."""

import numpy as np

from repro.hog import (
    HogConfig,
    HogDescriptor,
    dalal_triggs_config,
    napprox_fp_config,
)


class TestFeatureLengths:
    def test_dalal_triggs_64x128(self):
        assert dalal_triggs_config().feature_length((128, 64)) == 3780

    def test_napprox_fp_64x128(self):
        # Paper Section 4: 7560 = 7 x 15 x 18 x 4 features per window.
        assert napprox_fp_config().feature_length((128, 64)) == 7560

    def test_compute_matches_declared_length(self):
        descriptor = HogDescriptor(dalal_triggs_config())
        image = np.random.default_rng(0).random((128, 64))
        assert descriptor.compute(image).shape == (3780,)


class TestConfigSemantics:
    def test_napprox_fp_is_signed_count_voting(self):
        config = napprox_fp_config()
        assert config.n_bins == 18
        assert config.signed
        assert config.voting == "count"
        assert not config.interpolate

    def test_norm_override(self):
        config = napprox_fp_config(normalization="none")
        assert config.normalization == "none"


class TestDescriptor:
    def test_oriented_edge_dominates_expected_bin(self):
        # A horizontal intensity ramp has gradient angle 0.
        image = np.tile(np.linspace(0, 1, 64), (64, 1))
        grid = HogDescriptor(napprox_fp_config()).cell_grid(image)
        assert grid[2, 2].argmax() == 0

    def test_rotation_moves_bin(self):
        image = np.tile(np.linspace(0, 1, 64), (64, 1))
        grid_h = HogDescriptor(napprox_fp_config()).cell_grid(image)
        grid_v = HogDescriptor(napprox_fp_config()).cell_grid(image.T)
        assert grid_h[2, 2].argmax() != grid_v[2, 2].argmax()

    def test_rgb_accepted(self):
        image = np.random.default_rng(0).random((16, 16, 3))
        grid = HogDescriptor().cell_grid(image)
        assert grid.shape == (2, 2, 9)

    def test_with_normalization_copy(self):
        descriptor = HogDescriptor()
        other = descriptor.with_normalization("none")
        assert other.config.normalization == "none"
        assert descriptor.config.normalization == "l2"

    def test_from_cells_equals_compute(self):
        descriptor = HogDescriptor()
        image = np.random.default_rng(1).random((32, 32))
        direct = descriptor.compute(image)
        staged = descriptor.from_cells(descriptor.cell_grid(image))
        assert np.allclose(direct, staged)

    def test_flat_image_features_finite(self):
        features = HogDescriptor().compute(np.full((32, 32), 0.5))
        assert np.isfinite(features).all()
