"""Future-work bench: Parrot compression for better power efficiency.

The paper's conclusion flags "optimization of the combined Parrot HoG and
Eedn network designs for better power efficiency" as future work. This
bench quantifies the frontier: structured pruning of the parrot's hidden
units versus histogram fidelity, per-cell cores, and full-HD extraction
power (at 32-spike coding).
"""

from repro.analysis import format_sig, format_table
from repro.parrot import (
    ParrotExtractor,
    parrot_fidelity,
    prune_hidden_units,
    train_parrot,
)
from repro.power import parrot_estimate


def test_bench_parrot_compression(benchmark, capsys):
    network, _, _ = benchmark.pedantic(
        lambda: train_parrot(rng=0), rounds=1, iterations=1
    )

    rows = []
    frontier = []
    for keep in (512, 256, 128, 64, 32):
        result = prune_hidden_units(network, keep=keep)
        extractor = ParrotExtractor(result.network)
        fidelity = parrot_fidelity(extractor, n_cells=200, rng=99)
        estimate = parrot_estimate(
            window=32, cores_per_module=result.cores_per_cell
        )
        rows.append(
            [
                str(keep),
                str(result.cores_per_cell),
                format_sig(fidelity.correlation),
                format_sig(fidelity.dominant_bin_agreement),
                f"{estimate.power_watts:.2f} W",
            ]
        )
        frontier.append((result.cores_per_cell, fidelity.correlation))

    print()
    print("Future work: parrot hidden-width compression (32-spike power)")
    print(
        format_table(
            ["hidden units", "cores/cell", "histogram corr",
             "dominant-bin agree", "full-HD@26fps"],
            rows,
        )
    )

    cores = [c for c, _ in frontier]
    correlations = [corr for _, corr in frontier]
    # Pruning must actually buy cores...
    assert cores[-1] < cores[0]
    # ...and the full-width model must stay competitive with the best.
    assert correlations[0] >= max(correlations) - 0.1
