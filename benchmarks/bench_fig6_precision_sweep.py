"""Figure 6: parrot quality versus input representation (32 -> 1 spikes).

The printed table reports, per precision, the validation classifier
accuracy, histogram correlation, miss-rate proxy, and the per-module
throughput that drives the Table 2 power model.
"""

import numpy as np

from repro.experiments import fig6


def test_bench_fig6_precision_sweep(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: fig6.run(spike_windows=(32, 16, 8, 4, 2, 1), rng=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig6.format_report(result))

    correlations = [point.histogram_correlation for point in result.points]
    throughputs = [point.throughput_cells_per_second for point in result.points]
    # Quality degrades (weakly) as precision drops...
    assert correlations[0] > correlations[-1]
    spearman = np.corrcoef(
        np.argsort(np.argsort(correlations)), np.arange(len(correlations))[::-1]
    )[0, 1]
    assert spearman > 0.5
    # ...while throughput rises from 31 to 1000 cells/s (paper numbers).
    assert throughputs[0] == 31
    assert throughputs[-1] == 1000
    # Analog reference upper-bounds the spiking points.
    assert result.analog_reference.histogram_correlation >= correlations[0] - 0.05
