"""Figure 4: miss-rate/FPPI curves with SVM classifiers.

Regenerates the paper's comparison of FPGA-HoG, NApprox(fp), and the
TrueNorth-quantised NApprox, all with hard-negative-mined linear SVMs and
L2 block normalisation. The benchmark timing covers one full
train-and-evaluate pipeline; the printed table is the figure's data.
"""

from repro.experiments import fig4


def test_bench_fig4_curves(benchmark, bench_data, capsys):
    result = benchmark.pedantic(
        lambda: fig4.run(bench_data, mining_rounds=1, rng=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig4.format_report(result))

    rates = result.log_average_miss_rates()
    # Every pipeline must genuinely detect (LAMR well below the 1.0 of a
    # blind detector).
    assert all(rate < 0.8 for rate in rates.values()), rates
    # The paper's claim is comparability: the full-precision pipelines
    # must be close, and the quantised NApprox within a modest factor.
    assert abs(rates["FPGA-HoG"] - rates["NApprox(fp)"]) < 0.15
    assert rates["NApprox"] < max(rates["NApprox(fp)"], 0.05) * 4 + 0.1
