"""Windows/sec: vectorized batch engine vs the tick-accurate reference.

The workload is the pedestrian-detection hot path — NApprox HoG cell
windows (10x10 patches through the 22-core cell module) — the unit the
paper's throughput numbers are denominated in. The batch engine pushes
all windows through the module simultaneously (one stacked matmul per
tick); the reference engine advances core by core, window by window.
Conformance is asserted on the benchmarked outputs themselves before any
timing is reported.

Run standalone (no pytest-benchmark dependency, wall-clock timing;
machine-readable results go to ``BENCH_engine.json`` at the repo root so
the perf trajectory is tracked across PRs):

    PYTHONPATH=src python benchmarks/bench_engine_batch.py --quick

``--quick`` keeps the whole run within a CI smoke budget (~10 s);
``--check`` exits non-zero below the acceptance speedup of 5x.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.napprox.corelet_impl import NApproxCellRunner

REPO_ROOT = Path(__file__).resolve().parent.parent


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_bench(
    window: int,
    batch: int,
    ref_windows: int,
    check: bool,
    min_speedup: float,
    output: str = None,
) -> int:
    rng = np.random.default_rng(0)
    patches = rng.random((batch, 10, 10))

    batch_runner = NApproxCellRunner(window=window, rng=0, engine="batch")
    reference_runner = NApproxCellRunner(window=window, rng=0)
    ticks = batch_runner._total_ticks

    # Warm-up: first batch run pays numpy allocation/caching overheads.
    batch_runner.extract_batch(patches[: min(4, batch)])
    batch_hist, batch_seconds = _time(lambda: batch_runner.extract_batch(patches))
    batch_rate = batch / batch_seconds

    ref_hist, ref_seconds = _time(
        lambda: np.stack(
            [reference_runner.extract(patch) for patch in patches[:ref_windows]]
        )
    )
    ref_rate = ref_windows / ref_seconds

    if not np.array_equal(batch_hist[:ref_windows], ref_hist):
        print("FAIL: engines disagree on the benchmarked windows", file=sys.stderr)
        return 2

    speedup = batch_rate / ref_rate
    print(f"workload: NApprox cell window={window} ({ticks} ticks, 22 cores)")
    print(
        f"reference: {ref_windows:4d} windows in {ref_seconds:6.2f}s "
        f"= {ref_rate:7.2f} windows/s"
    )
    print(
        f"batch({batch:3d}): {batch:4d} windows in {batch_seconds:6.2f}s "
        f"= {batch_rate:7.2f} windows/s"
    )
    print(f"speedup: {speedup:.1f}x (outputs bit-identical)")

    payload = {
        "benchmark": "bench_engine_batch",
        "workload": {
            "kind": "napprox-cell",
            "window": window,
            "ticks": ticks,
            "cores": batch_runner.core_count,
        },
        "batch_size": batch,
        "reference_windows_per_second": ref_rate,
        "batch_windows_per_second": batch_rate,
        "speedup": speedup,
        "bit_identical": True,
    }
    path = Path(output) if output else REPO_ROOT / "BENCH_engine.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")

    if check and speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x < required {min_speedup}x", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--window", type=int, default=64, help="spike window")
    parser.add_argument("--batch", type=int, default=32, help="batch size")
    parser.add_argument(
        "--ref-windows", type=int, default=4,
        help="windows timed on the reference engine (it is slow)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke setting: window 32, 3 reference windows",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the speedup misses --min-speedup",
    )
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--output", default=None,
        help="JSON result path (default: BENCH_engine.json at repo root)",
    )
    args = parser.parse_args()
    if args.quick:
        args.window = min(args.window, 32)
        args.ref_windows = min(args.ref_windows, 3)
    return run_bench(
        args.window,
        args.batch,
        args.ref_windows,
        args.check,
        args.min_speedup,
        args.output,
    )


if __name__ == "__main__":
    sys.exit(main())
