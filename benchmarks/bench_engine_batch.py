"""Windows/sec: vectorized batch engine vs the tick-accurate reference.

The workload is the pedestrian-detection hot path — NApprox HoG cell
windows (10x10 patches through the 22-core cell module) — the unit the
paper's throughput numbers are denominated in. The batch engine pushes
all windows through the module simultaneously (one stacked matmul per
tick); the reference engine advances core by core, window by window.
Conformance is asserted on the benchmarked outputs themselves before any
timing is reported.

A second section sweeps input spike density on a 128-core sparse-chain
workload at batch size 1, timing the event-driven engine against the
batch engine. Spiking workloads are mostly silent (Esser et al.,
arXiv:1603.08270), and the sweep records how the event engine converts
that sparsity into throughput — ``benchmarks/check_regression.py``
gates on >= 3x over the batch engine at <= 10 % density.

Run standalone (no pytest-benchmark dependency, wall-clock timing;
machine-readable results go to ``BENCH_engine.json`` at the repo root so
the perf trajectory is tracked across PRs):

    PYTHONPATH=src python benchmarks/bench_engine_batch.py --quick

``--quick`` keeps the whole run within a CI smoke budget (~10 s);
``--check`` exits non-zero below the acceptance speedup of 5x (batch vs
reference) or 3x (event vs batch at sparse density).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.napprox.corelet_impl import NApproxCellRunner
from repro.truenorth.simulator import Simulator
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import NeuronParameters, ResetMode

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Input spike densities the event-vs-batch sweep measures, silent-ish
#: through saturated. The sparse end is the paper-realistic regime.
SWEEP_DENSITIES = (0.01, 0.05, 0.10, 0.50, 1.00)


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def sparse_chain_system(n_cores: int = 128) -> NeurosynapticSystem:
    """A wide, mostly-quiescent system: the event engine's home regime.

    ``n_cores`` identical leak-free cores (identity crossbar, threshold
    1) each fed by one dedicated input line, with every even core
    routing a 16-neuron bundle into its successor — so activity follows
    input density closely (a line at density ``d`` keeps its core
    active ~``d`` of the time) while the batch engine still pays the
    full ``n_cores`` stacked matmul every tick.
    """
    system = NeurosynapticSystem("sparse-chain")
    identity = np.eye(256, dtype=bool)
    for _ in range(n_cores):
        core = system.new_core()
        core.set_axon_types(np.zeros(256, dtype=np.int64))
        core.set_crossbar(identity)
        for neuron in range(256):
            core.set_neuron(
                neuron,
                NeuronParameters(
                    weights=(1, 1, 1, 1),
                    threshold=1,
                    leak=0,
                    reset_mode=ResetMode.RESET,
                    reset_potential=0,
                    floor=0,
                ),
            )
    for src in range(0, n_cores - 1, 2):
        for neuron in range(16):
            system.add_route(src, neuron, src + 1, neuron, delay=1)
    system.add_input_port("in", [[(core_id, 64)] for core_id in range(n_cores)])
    system.add_output_probe("out", [(n_cores - 1, n) for n in range(16)])
    return system


def _runs_per_second(sim, ticks, inputs, seconds: float) -> float:
    runs, start = 0, time.perf_counter()
    while time.perf_counter() - start < seconds:
        sim.run(ticks, inputs)
        runs += 1
    return runs / (time.perf_counter() - start)


def run_density_sweep(
    ticks: int = 64, n_cores: int = 128, seconds: float = 0.5
) -> dict:
    """Time event vs batch at batch size 1 across ``SWEEP_DENSITIES``.

    Returns the ``density_sweep`` payload section: the workload
    fingerprint plus one point per density with both engines'
    windows/sec, the speedup, and the fraction of (core, tick) pairs
    the event engine actually integrated. Outputs are asserted
    bit-identical before any timing is reported.
    """
    rng = np.random.default_rng(42)
    sims = {
        engine: Simulator(sparse_chain_system(n_cores), rng=0, engine=engine)
        for engine in ("batch", "event")
    }
    width = len(sims["batch"].system.input_ports["in"].targets)
    points = []
    for density in SWEEP_DENSITIES:
        inputs = {"in": rng.random((ticks, width)) < density}
        results = {
            engine: sim.run(ticks, inputs) for engine, sim in sims.items()
        }  # doubles as per-density warm-up
        if results["batch"].total_spikes != results["event"].total_spikes or not (
            np.array_equal(
                results["batch"].probe_spikes["out"],
                results["event"].probe_spikes["out"],
            )
        ):
            raise AssertionError(
                f"engines disagree on the density-{density} sweep workload"
            )
        rates = {
            engine: _runs_per_second(sim, ticks, inputs, seconds)
            for engine, sim in sims.items()
        }
        active_fraction = sims["event"]._batch_engine.last_processed_core_ticks / (
            ticks * n_cores
        )
        points.append(
            {
                "density": density,
                "batch_windows_per_second": rates["batch"],
                "event_windows_per_second": rates["event"],
                "event_speedup": rates["event"] / rates["batch"],
                "active_core_fraction": active_fraction,
                "bit_identical": True,
            }
        )
        print(
            f"density {density:5.2f}: batch {rates['batch']:7.2f}/s "
            f"event {rates['event']:7.2f}/s "
            f"speedup {points[-1]['event_speedup']:5.2f}x "
            f"(active core-ticks {active_fraction:5.1%})"
        )
    return {
        "workload": {
            "kind": "sparse-chain",
            "cores": n_cores,
            "ticks": ticks,
            "batch_size": 1,
            "densities": list(SWEEP_DENSITIES),
        },
        "points": points,
    }


def run_bench(
    window: int,
    batch: int,
    ref_windows: int,
    check: bool,
    min_speedup: float,
    output: str = None,
    sweep_seconds: float = 0.5,
    min_event_speedup: float = 3.0,
) -> int:
    rng = np.random.default_rng(0)
    patches = rng.random((batch, 10, 10))

    batch_runner = NApproxCellRunner(window=window, rng=0, engine="batch")
    reference_runner = NApproxCellRunner(window=window, rng=0)
    ticks = batch_runner._total_ticks

    # Warm-up: first batch run pays numpy allocation/caching overheads.
    batch_runner.extract_batch(patches[: min(4, batch)])
    batch_hist, batch_seconds = _time(lambda: batch_runner.extract_batch(patches))
    batch_rate = batch / batch_seconds

    ref_hist, ref_seconds = _time(
        lambda: np.stack(
            [reference_runner.extract(patch) for patch in patches[:ref_windows]]
        )
    )
    ref_rate = ref_windows / ref_seconds

    if not np.array_equal(batch_hist[:ref_windows], ref_hist):
        print("FAIL: engines disagree on the benchmarked windows", file=sys.stderr)
        return 2

    speedup = batch_rate / ref_rate
    print(f"workload: NApprox cell window={window} ({ticks} ticks, 22 cores)")
    print(
        f"reference: {ref_windows:4d} windows in {ref_seconds:6.2f}s "
        f"= {ref_rate:7.2f} windows/s"
    )
    print(
        f"batch({batch:3d}): {batch:4d} windows in {batch_seconds:6.2f}s "
        f"= {batch_rate:7.2f} windows/s"
    )
    print(f"speedup: {speedup:.1f}x (outputs bit-identical)")

    payload = {
        "benchmark": "bench_engine_batch",
        "workload": {
            "kind": "napprox-cell",
            "window": window,
            "ticks": ticks,
            "cores": batch_runner.core_count,
        },
        "batch_size": batch,
        "reference_windows_per_second": ref_rate,
        "batch_windows_per_second": batch_rate,
        "speedup": speedup,
        "bit_identical": True,
    }
    payload["density_sweep"] = run_density_sweep(seconds=sweep_seconds)
    sparse_speedup = max(
        point["event_speedup"]
        for point in payload["density_sweep"]["points"]
        if point["density"] <= 0.10
    )
    print(
        f"event engine at <=10% density: {sparse_speedup:.1f}x over batch "
        "(outputs bit-identical)"
    )

    path = Path(output) if output else REPO_ROOT / "BENCH_engine.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")

    if check and speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x < required {min_speedup}x", file=sys.stderr)
        return 1
    if check and sparse_speedup < min_event_speedup:
        print(
            f"FAIL: event speedup {sparse_speedup:.1f}x at sparse density "
            f"< required {min_event_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--window", type=int, default=64, help="spike window")
    parser.add_argument("--batch", type=int, default=32, help="batch size")
    parser.add_argument(
        "--ref-windows", type=int, default=4,
        help="windows timed on the reference engine (it is slow)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke setting: window 32, 3 reference windows",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the speedup misses --min-speedup",
    )
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--min-event-speedup", type=float, default=3.0,
        help="required event-over-batch speedup at <=10%% input density",
    )
    parser.add_argument(
        "--sweep-seconds", type=float, default=0.5,
        help="timing window per (density, engine) point of the sweep",
    )
    parser.add_argument(
        "--output", default=None,
        help="JSON result path (default: BENCH_engine.json at repo root)",
    )
    args = parser.parse_args()
    if args.quick:
        args.window = min(args.window, 32)
        args.ref_windows = min(args.ref_windows, 3)
        args.sweep_seconds = min(args.sweep_seconds, 0.15)
    return run_bench(
        args.window,
        args.batch,
        args.ref_windows,
        args.check,
        args.min_speedup,
        args.output,
        args.sweep_seconds,
        args.min_event_speedup,
    )


if __name__ == "__main__":
    sys.exit(main())
