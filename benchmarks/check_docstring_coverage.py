"""Docstring coverage gate (stdlib-only ``interrogate`` equivalent).

Walks every module under ``src/repro`` with :mod:`ast` and measures the
fraction of *public* API objects (modules, classes, functions, methods)
that carry a docstring. The CI ``docs`` job runs::

    python benchmarks/check_docstring_coverage.py --fail-under 95

Counting rules:

- A name is public unless it (or any enclosing scope) starts with ``_``;
  ``__init__`` is exempted from the underscore rule but only requires a
  docstring when its class has none.
- ``@overload`` stubs and bodies that are a lone ``...``/``pass`` after
  a decorator such as ``@abstractmethod`` still count (they are API).
- Nested functions (defined inside another function) are private by
  construction and never counted.

Exit status 0 when coverage >= the threshold, 1 otherwise; ``--verbose``
lists every undocumented object so the gap is actionable.
"""

import argparse
import ast
import sys
from pathlib import Path

DEFAULT_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def _iter_api(tree: ast.Module):
    """Yield ``(qualname, node)`` for the module's public API objects."""
    yield "<module>", tree

    def walk(node, prefix, in_function):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function or not _is_public(child.name):
                    continue
                yield f"{prefix}{child.name}", child
                yield from walk(child, f"{prefix}{child.name}.", True)
            elif isinstance(child, ast.ClassDef):
                if not _is_public(child.name):
                    continue
                yield f"{prefix}{child.name}", child
                yield from walk(child, f"{prefix}{child.name}.", in_function)
            else:
                yield from walk(child, prefix, in_function)

    yield from walk(tree, "", False)


def audit_file(path: Path):
    """Return ``(documented, missing)`` lists of qualnames for one file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    documented, missing = [], []
    class_has_doc = {}
    for qualname, node in _iter_api(tree):
        if isinstance(node, ast.ClassDef):
            class_has_doc[qualname] = ast.get_docstring(node) is not None
    for qualname, node in _iter_api(tree):
        if qualname.endswith("__init__"):
            owner = qualname.rsplit(".", 1)[0]
            # A documented class speaks for its constructor.
            if class_has_doc.get(owner):
                continue
        if ast.get_docstring(node) is not None:
            documented.append(qualname)
        else:
            missing.append(qualname)
    return documented, missing


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=DEFAULT_ROOT,
        help="package directory to audit (default: src/repro)",
    )
    parser.add_argument(
        "--fail-under", type=float, default=95.0,
        help="minimum coverage percentage to pass",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="list every undocumented public object",
    )
    args = parser.parse_args(argv)

    total_documented = total_missing = 0
    per_file = []
    for path in sorted(args.root.rglob("*.py")):
        documented, missing = audit_file(path)
        total_documented += len(documented)
        total_missing += len(missing)
        per_file.append((path, documented, missing))

    total = total_documented + total_missing
    coverage = 100.0 if total == 0 else 100.0 * total_documented / total
    for path, documented, missing in per_file:
        if missing and args.verbose:
            rel = path.relative_to(args.root.parent)
            for qualname in missing:
                print(f"MISSING {rel}:{qualname}")
    print(
        f"docstring coverage: {coverage:.1f}% "
        f"({total_documented}/{total} public objects documented)"
    )
    if coverage < args.fail_under:
        print(
            f"FAIL: coverage {coverage:.1f}% < required {args.fail_under:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
