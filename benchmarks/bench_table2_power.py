"""Table 2: estimated power for the HoG feature-extraction approaches.

The benchmark times the analytical model (trivially fast); the value is
the printed paper-vs-model table, whose rows must reproduce the paper's
numbers: FPGA 1.12/8.6 W, NApprox ~40 W (~650 chips), Parrot 6.15 W /
768 mW / 192 mW, ratios 6.5x-208x.
"""

import pytest

from repro.experiments import table2


def test_bench_table2_power(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: table2.run(measure_corelet=True), rounds=1, iterations=1
    )
    print()
    print(table2.format_report(result))

    watts = {row.signal_resolution: row.power_watts for row in result.rows}
    assert watts["64-spike (6-bit)"] == pytest.approx(40.0, rel=0.08)
    assert watts["32-spike (5-bit)"] == pytest.approx(6.15, rel=0.02)
    assert watts["4-spike (2-bit)"] == pytest.approx(0.768, rel=0.01)
    assert watts["1-spike (1-bit)"] == pytest.approx(0.192, rel=0.01)
    assert result.ratio_32 == pytest.approx(6.5, rel=0.1)
    assert result.ratio_1 == pytest.approx(208, rel=0.1)
    assert result.measured_napprox_cores == 22
