"""Markdown link checker for the repo docs (stdlib only).

Scans the given markdown files (default: the top-level ``*.md`` plus
``docs/*.md``) for inline links and validates every **local** target:

- relative file links must resolve to an existing file or directory
  (relative to the file containing the link);
- ``#fragment``-only links must match a heading in the same file
  (GitHub-style slugs: lowercase, spaces to dashes, punctuation
  dropped);
- ``file.md#fragment`` links must match a heading in the target file.

External targets (``http://``, ``https://``, ``mailto:``) are reported
but never fetched — CI must not depend on the network. Exit status 0
when every local link resolves, 1 otherwise.

CI runs::

    python benchmarks/check_doc_links.py
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line.

    GitHub maps *each* space to a dash without collapsing runs, so
    ``Fault injection & resilience`` slugs to
    ``fault-injection--resilience`` (the ``&`` leaves two spaces).
    """
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return text.replace(" ", "-")


def _headings(path: Path):
    """All heading slugs in a markdown file (code fences skipped)."""
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(_slugify(match.group(1)))
    return slugs


def _links(path: Path):
    """All inline link targets in a markdown file (code fences skipped)."""
    targets = []
    in_fence = False
    for line in path.read_text().splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets.extend(_LINK_RE.findall(line))
    return targets


def check_file(path: Path):
    """Return a list of broken-link descriptions for one markdown file."""
    problems = []
    for target in _links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
                continue
            if fragment and resolved.suffix == ".md":
                if _slugify(fragment) not in _headings(resolved):
                    problems.append(
                        f"{path}: missing anchor -> {target}"
                    )
        elif fragment:
            if _slugify(fragment) not in _headings(path):
                problems.append(f"{path}: missing anchor -> #{fragment}")
    return problems


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="markdown files to check (default: *.md and docs/*.md)",
    )
    args = parser.parse_args(argv)
    files = args.files or sorted(
        list(REPO_ROOT.glob("*.md")) + list((REPO_ROOT / "docs").glob("*.md"))
    )
    problems = []
    checked = 0
    for path in files:
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    print(f"checked {checked} files: {len(problems)} broken local links")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
