"""Section 5.1: the Absorbed approach's convergence failure.

The monolithic pixels-to-decision network, trained on the same (small)
window set that suffices for the HoG-feature classifiers, must exhibit
the paper's failure mode: blind or near-chance decisions on held-out
data. The sweep also shows the paper's diagnosis — more data helps a
network sized for 64x128-pixel inputs.
"""

from repro.experiments import absorbed_exp


def test_bench_absorbed_convergence(benchmark, capsys):
    study = benchmark.pedantic(
        lambda: absorbed_exp.run(sizes=(100, 300), n_test=120, rng=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(absorbed_exp.format_report(study))

    small = study.outcomes[0]
    # The paper's failure mode at the HoG-classifier-sized training set:
    # blind decisions or no generalisation.
    assert small.blind or small.test_accuracy < 0.65
