"""Figure 5: miss-rate/FPPI curves with Eedn classifiers.

NApprox and Parrot (32-spike stochastic coding) feed the same Eedn
classifier architecture; block normalisation is elided as on TrueNorth.
The printed table is the figure's data plus the resource comparison the
paper highlights (Parrot uses substantially fewer extraction cores).
"""

from repro.experiments import fig5


def test_bench_fig5_curves(benchmark, bench_data, capsys):
    result = benchmark.pedantic(
        lambda: fig5.run(bench_data, parrot_spikes=32, rng=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig5.format_report(result))

    napprox = result.curves["NApprox"].log_average_miss_rate()
    parrot = result.curves["Parrot"].log_average_miss_rate()
    # Both produce genuine detectors...
    assert napprox < 0.8 and parrot < 0.9
    # ...with comparable quality (the paper's "very similar tradeoffs" at
    # full scale; our synthetic substrate admits a wider band).
    assert abs(napprox - parrot) < 0.35
    # Parrot's resource advantage must hold.
    assert (
        result.extractor_cores_per_window["Parrot"]
        < result.extractor_cores_per_window["NApprox"]
    )
