"""Validate a ``repro.obs`` Prometheus-style exposition file.

The CI ``obs-smoke`` job runs a short serve load with ``--metrics
--metrics-output``, then points this checker at the scraped file. The
check fails (exit 1) when:

- the file cannot be parsed as exposition text (malformed sample line);
- any sample value is non-numeric or NaN;
- any *declared* metric — the observability layer's contract, listed in
  ``REQUIRED_SAMPLES`` — is missing.

Usage::

    PYTHONPATH=src python benchmarks/check_metrics_exposition.py \
        /tmp/metrics.prom [--require extra_metric ...]
"""

import argparse
import math
import sys
from pathlib import Path

from repro.obs import parse_prometheus

#: Samples every `python -m repro serve --metrics` run must expose.
REQUIRED_SAMPLES = (
    # simulator / engine
    "sim_ticks_total",
    "sim_spikes_total",
    "engine_runs_total",
    "engine_lanes_total",
    "engine_spikes_delivered_total",
    # hardware-counter telemetry (DESIGN.md §12)
    "hw_spikes_total",
    "hw_synaptic_events_total",
    "hw_membrane_updates_total",
    "hw_router_hops_total",
    "hw_cross_chip_hops_total",
    "hw_intra_chip_hops_total",
    "hw_dropped_spikes_total",
    "hw_duplicated_spikes_total",
    "hw_active_core_ticks_total",
    # serving
    "serve_submitted_total",
    "serve_completed_total",
    "serve_windows_scored_total",
    "serve_queue_depth",
    "serve_batch_size_count",
    "serve_batch_size_sum",
    "serve_latency_seconds_count",
    "serve_latency_seconds_sum",
    "serve_request_energy_nj_count",
    "serve_request_energy_nj_sum",
    "serve_energy_nanojoules_total",
    # per-span timings
    "span_engine_run_seconds_count",
    "span_serve_model_batch_seconds_count",
    "span_serve_worker_execute_seconds_count",
    "span_serve_batcher_drain_seconds_count",
)


def check(text: str, required) -> int:
    """Exit code for an exposition ``text`` (prints failures)."""
    try:
        samples = parse_prometheus(text)
    except ValueError as exc:
        print(f"FAIL: unparseable exposition: {exc}", file=sys.stderr)
        return 1
    failures = 0
    for name in required:
        if name not in samples:
            print(f"FAIL: declared metric missing: {name}", file=sys.stderr)
            failures += 1
        elif math.isnan(samples[name]):
            print(f"FAIL: metric is NaN: {name}", file=sys.stderr)
            failures += 1
    if failures:
        return 1
    print(
        f"OK: {len(samples)} samples, all {len(tuple(required))} declared "
        "metrics present and numeric"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="exposition file to validate")
    parser.add_argument(
        "--require", nargs="*", default=(),
        help="additional sample names that must be present",
    )
    args = parser.parse_args()
    text = Path(args.path).read_text()
    return check(text, tuple(REQUIRED_SAMPLES) + tuple(args.require))


if __name__ == "__main__":
    sys.exit(main())
