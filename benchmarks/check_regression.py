"""Bench-trajectory regression gate over the committed BENCH_*.json files.

The repo's benchmark payloads are load-bearing: every PR commits
``BENCH_engine.json`` / ``BENCH_serve.json`` / ``BENCH_faults.json``
baselines, and this checker compares a fresh run ("current") against
the committed ones ("baseline"):

- **throughput** (engine ``batch_windows_per_second``, serve
  ``service_requests_per_second``): fails on a drop of more than
  ``--max-throughput-regression`` (default 10 %);
- **event-engine sparsity win** (engine ``density_sweep``): fails when
  the current run's best event-over-batch speedup at input density
  <= 10 % falls below ``--min-event-speedup`` (default 3x) — an
  absolute floor, like the overhead budget, not a delta;
- **observability overhead** (serve ``obs_overhead_fraction`` and the
  sharded worker tier's ``sharded_obs_overhead_fraction``, which adds
  cross-process span and metrics-delta shipping): fails when the
  current run spends more than ``--max-obs-overhead`` (default 5 %) of
  its throughput on telemetry — this is an absolute budget, not a
  delta; the sharded field warns and passes when absent (older
  payloads predate it);
- **worker scale-out** (serve ``workers_sweep``): with
  ``--min-worker-scaling WORKERS:FLOOR[,...]`` set, fails when the
  sharded tier's speedup over one worker falls below the floor at any
  listed shard count — also an absolute floor (off by default);
- **fault-free accuracy** (faults ``approaches.*.miss_rate[0]``): fails
  when any approach's zero-fault miss rate rises by more than
  ``--max-missrate-increase`` (default 0.05 absolute);
- **video parity + cache locality** (video ``parity`` and
  ``motions``): fails when the current run's engine/worker conformance
  flags are not both true, or when the static-background cache hit
  rate beats full-motion by less than ``--min-video-cache-separation``
  (default 0.25) — both absolute invariants; the walk-motion fps is
  additionally gated against the baseline like the other throughputs.

Comparisons only run between payloads of the *same* workload
configuration; a config mismatch (e.g. a ``--quick`` current run
against a full-size baseline) is reported and skipped. Missing files —
no prior baseline on a fresh branch, or a bench that was not re-run —
warn and pass, so the gate is non-blocking until both sides exist.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline-dir . --current-dir /tmp/bench [--warn-only]
"""

import argparse
import json
import sys
from pathlib import Path

#: The benchmark payloads the gate knows how to compare.
BENCH_FILES = (
    "BENCH_engine.json",
    "BENCH_serve.json",
    "BENCH_faults.json",
    "BENCH_video.json",
)


def _load(path: Path):
    """The parsed payload, or ``None`` (with a warning) when unusable."""
    if not path.is_file():
        print(f"WARN: {path} missing; skipping")
        return None
    try:
        return json.loads(path.read_text())
    except ValueError as exc:
        print(f"WARN: {path} unparseable ({exc}); skipping")
        return None


def _config(payload, keys):
    """The comparable-configuration fingerprint of a payload."""
    return {key: payload.get(key) for key in keys}


def _check_throughput(name, metric, baseline, current, max_regression):
    """Failure strings for one higher-is-better throughput metric."""
    base = baseline.get(metric)
    cur = current.get(metric)
    if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
        print(f"WARN: {name}: {metric} absent on one side; skipping")
        return []
    if base <= 0:
        print(f"WARN: {name}: baseline {metric} is {base}; skipping")
        return []
    drop = 1.0 - cur / base
    verdict = "FAIL" if drop > max_regression else "ok"
    print(
        f"{verdict}: {name}: {metric} {base:.2f} -> {cur:.2f} "
        f"({-drop * 100:+.1f}%, floor {-max_regression * 100:.0f}%)"
    )
    if drop > max_regression:
        return [f"{name}: {metric} regressed {drop * 100:.1f}%"]
    return []


def _check_event_sweep(current, min_event_speedup):
    """Absolute floor on the event engine's sparse-density speedup."""
    sweep = current.get("density_sweep")
    if not isinstance(sweep, dict) or not sweep.get("points"):
        print("WARN: BENCH_engine.json: no density_sweep in current run; "
              "skipping event-engine gate")
        return []
    sparse = [
        point for point in sweep["points"]
        if isinstance(point.get("density"), (int, float))
        and point["density"] <= 0.10
        and isinstance(point.get("event_speedup"), (int, float))
    ]
    if not sparse:
        print("WARN: BENCH_engine.json: density_sweep has no <=10% points; "
              "skipping event-engine gate")
        return []
    best = max(sparse, key=lambda point: point["event_speedup"])
    speedup = best["event_speedup"]
    verdict = "FAIL" if speedup < min_event_speedup else "ok"
    print(
        f"{verdict}: BENCH_engine.json: event engine {speedup:.1f}x over "
        f"batch at density {best['density']:.0%} "
        f"(floor {min_event_speedup:.1f}x)"
    )
    if speedup < min_event_speedup:
        return [
            f"BENCH_engine.json: event speedup {speedup:.1f}x at sparse "
            f"density below the {min_event_speedup:.1f}x floor"
        ]
    return []


def check_engine(baseline, current, args):
    """Engine throughput, plus the event engine's sparsity floor."""
    failures = _check_event_sweep(current, args.min_event_speedup)
    keys = ("workload", "batch_size")
    if _config(baseline, keys) != _config(current, keys):
        print("WARN: BENCH_engine.json: workload configs differ; "
              "skipping throughput comparison")
        return failures
    failures += _check_throughput(
        "BENCH_engine.json",
        "batch_windows_per_second",
        baseline,
        current,
        args.max_throughput_regression,
    )
    return failures


def _parse_scaling_floors(spec):
    """``"2:1.6,4:2.5"`` -> ``{2: 1.6, 4: 2.5}`` (``{}`` on empty spec)."""
    floors = {}
    for part in str(spec or "").split(","):
        part = part.strip()
        if not part:
            continue
        workers, _, floor = part.partition(":")
        try:
            floors[int(workers)] = float(floor)
        except ValueError:
            raise SystemExit(
                f"bad --min-worker-scaling entry {part!r} "
                "(expected WORKERS:FLOOR, e.g. 2:1.6)"
            )
    return floors


def _check_workers_sweep(current, spec):
    """Absolute floors on sharded scale-out speedup vs one worker."""
    floors = _parse_scaling_floors(spec)
    if not floors:
        return []
    sweep = current.get("workers_sweep")
    if not isinstance(sweep, dict) or not sweep.get("points"):
        print("WARN: BENCH_serve.json: no workers_sweep in current run; "
              "skipping worker-scaling gate")
        return []
    by_workers = {
        point.get("workers"): point
        for point in sweep["points"]
        if isinstance(point.get("scaling"), (int, float))
    }
    failures = []
    for workers in sorted(floors):
        floor = floors[workers]
        point = by_workers.get(workers)
        if point is None:
            print(f"WARN: BENCH_serve.json: workers_sweep has no "
                  f"workers={workers} point; skipping its floor")
            continue
        scaling = point["scaling"]
        verdict = "FAIL" if scaling < floor else "ok"
        print(
            f"{verdict}: BENCH_serve.json: workers={workers} scale-out "
            f"{scaling:.2f}x over workers=1 (floor {floor:.1f}x)"
        )
        if scaling < floor:
            failures.append(
                f"BENCH_serve.json: workers={workers} scaling "
                f"{scaling:.2f}x below the {floor:.1f}x floor"
            )
    return failures


def check_serve(baseline, current, args):
    """Serve throughput plus the absolute telemetry-overhead budget."""
    failures = _check_workers_sweep(current, args.min_worker_scaling)
    for field in ("obs_overhead_fraction", "sharded_obs_overhead_fraction"):
        overhead = current.get(field)
        if isinstance(overhead, (int, float)):
            verdict = "FAIL" if overhead > args.max_obs_overhead else "ok"
            print(
                f"{verdict}: BENCH_serve.json: {field} "
                f"{overhead * 100:+.1f}% "
                f"(budget {args.max_obs_overhead * 100:.0f}%)"
            )
            if overhead > args.max_obs_overhead:
                failures.append(
                    f"BENCH_serve.json: {field} {overhead * 100:.1f}% "
                    f"exceeds the {args.max_obs_overhead * 100:.0f}% budget"
                )
        else:
            print(f"WARN: BENCH_serve.json: no {field} in current run")
    keys = ("workload", "service")
    if _config(baseline, keys) != _config(current, keys):
        print("WARN: BENCH_serve.json: workload configs differ; "
              "skipping throughput comparison")
        return failures
    failures += _check_throughput(
        "BENCH_serve.json",
        "service_requests_per_second",
        baseline,
        current,
        args.max_throughput_regression,
    )
    return failures


def check_faults(baseline, current, args):
    """Fault-free accuracy: the zero-fault miss rate must not creep up."""
    keys = ("fault_kind", "rates", "fault_seeds", "ticks", "hidden")
    if _config(baseline, keys) != _config(current, keys):
        print("WARN: BENCH_faults.json: sweep configs differ; skipping")
        return []
    failures = []
    base_app = baseline.get("approaches", {})
    cur_app = current.get("approaches", {})
    for name in sorted(set(base_app) & set(cur_app)):
        try:
            base_miss = float(base_app[name]["miss_rate"][0])
            cur_miss = float(cur_app[name]["miss_rate"][0])
        except (KeyError, IndexError, TypeError, ValueError):
            print(f"WARN: BENCH_faults.json: no miss_rate[0] for {name}")
            continue
        rise = cur_miss - base_miss
        verdict = "FAIL" if rise > args.max_missrate_increase else "ok"
        print(
            f"{verdict}: BENCH_faults.json: {name} fault-free miss rate "
            f"{base_miss:.3f} -> {cur_miss:.3f} "
            f"(cap +{args.max_missrate_increase:.2f})"
        )
        if rise > args.max_missrate_increase:
            failures.append(
                f"BENCH_faults.json: {name} fault-free miss rate rose "
                f"{rise:.3f}"
            )
    return failures


def check_video(baseline, current, args):
    """Video parity flags, cache-locality separation, and walk fps."""
    failures = []
    parity = current.get("parity", {})
    for flag in ("engines_identical", "workers_identical"):
        value = parity.get(flag)
        verdict = "ok" if value is True else "FAIL"
        print(f"{verdict}: BENCH_video.json: parity.{flag} = {value}")
        if value is not True:
            failures.append(
                f"BENCH_video.json: parity.{flag} is {value!r}, not true"
            )
    motions = current.get("motions", {})
    static_hit = motions.get("static", {}).get("cache_hit_rate")
    full_hit = motions.get("full", {}).get("cache_hit_rate")
    if isinstance(static_hit, (int, float)) and isinstance(full_hit, (int, float)):
        separation = static_hit - full_hit
        floor = args.min_video_cache_separation
        verdict = "FAIL" if separation < floor else "ok"
        print(
            f"{verdict}: BENCH_video.json: static-vs-full cache hit "
            f"separation {separation:.2f} (floor {floor:.2f})"
        )
        if separation < floor:
            failures.append(
                f"BENCH_video.json: cache separation {separation:.2f} "
                f"below the {floor:.2f} floor"
            )
    else:
        print("WARN: BENCH_video.json: motion sweep hit rates absent; "
              "skipping cache-locality gate")
    keys = ("workload", "service")
    if _config(baseline, keys) != _config(current, keys):
        print("WARN: BENCH_video.json: workload configs differ; "
              "skipping fps comparison")
        return failures
    failures += _check_throughput(
        "BENCH_video.json (motion=walk)",
        "fps",
        baseline.get("motions", {}).get("walk", {}),
        current.get("motions", {}).get("walk", {}),
        args.max_throughput_regression,
    )
    return failures


CHECKS = {
    "BENCH_engine.json": check_engine,
    "BENCH_serve.json": check_serve,
    "BENCH_faults.json": check_faults,
    "BENCH_video.json": check_video,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir", default=".",
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current-dir", default=".",
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--max-throughput-regression", type=float, default=0.10,
        help="allowed fractional throughput drop vs baseline (default 0.10)",
    )
    parser.add_argument(
        "--min-event-speedup", type=float, default=3.0,
        help="required event-over-batch speedup at <=10%% input density",
    )
    parser.add_argument(
        "--max-obs-overhead", type=float, default=0.05,
        help="absolute telemetry-overhead budget (default 0.05)",
    )
    parser.add_argument(
        "--min-worker-scaling", default="",
        help="comma-separated WORKERS:FLOOR absolute floors on the "
        "sharded scale-out sweep, e.g. '2:1.6,4:2.5' (empty = gate off; "
        "warns and skips when the current payload has no workers_sweep)",
    )
    parser.add_argument(
        "--max-missrate-increase", type=float, default=0.05,
        help="allowed absolute rise of the fault-free miss rate",
    )
    parser.add_argument(
        "--min-video-cache-separation", type=float, default=0.25,
        help="required static-minus-full cache hit-rate gap in the "
        "video motion sweep (absolute floor, default 0.25)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report failures but always exit 0 (rollout mode)",
    )
    args = parser.parse_args()

    failures = []
    compared = 0
    for name in BENCH_FILES:
        baseline = _load(Path(args.baseline_dir) / name)
        current = _load(Path(args.current_dir) / name)
        if baseline is None or current is None:
            continue
        compared += 1
        failures += CHECKS[name](baseline, current, args)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if args.warn_only:
            print("warn-only mode: failures reported, exiting 0")
            return 0
        return 1
    print(f"OK: {compared} benchmark payload(s) compared, no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
