"""Ablations over the design choices the paper calls out.

- orientation bins: 9 unsigned vs 18 signed;
- voting: magnitude-weighted vs count;
- orientation interpolation (aliasing mitigation) on/off;
- block normalisation on/off;
- NApprox input precision (spike window).

Each ablation trains a small SVM on window features and reports held-out
window classification accuracy — a fast, detection-correlated probe of
feature quality.
"""

import numpy as np
import pytest

from repro.analysis import format_sig, format_table
from repro.datasets import SyntheticPersonDataset
from repro.hog import HogConfig, HogDescriptor
from repro.napprox import NApproxConfig, NApproxDescriptor
from repro.svm import LinearSVM


@pytest.fixture(scope="module")
def windows():
    train = SyntheticPersonDataset(rng=21)
    test = SyntheticPersonDataset(rng=22)
    return (
        train.positive_windows(80),
        train.negative_windows(160),
        test.positive_windows(40),
        test.negative_windows(80),
    )


def _probe_accuracy(extractor, windows):
    pos_tr, neg_tr, pos_te, neg_te = windows
    def features(batch):
        return np.stack([extractor.compute(w) for w in batch])

    x_train = np.vstack([features(pos_tr), features(neg_tr)])
    y_train = np.concatenate([np.ones(len(pos_tr)), -np.ones(len(neg_tr))])
    model = LinearSVM(C=0.1, epochs=15, rng=0).fit(x_train, y_train)
    x_test = np.vstack([features(pos_te), features(neg_te)])
    y_test = np.concatenate([np.ones(len(pos_te)), -np.ones(len(neg_te))])
    return float((model.predict(x_test) == y_test).mean())


def test_bench_hog_ablations(benchmark, windows, capsys):
    variants = {
        "9 bins, magnitude, interp, l2 (Dalal-Triggs)": HogDescriptor(HogConfig()),
        "18 bins signed, count, no interp, l2 (NApprox-fp)": HogDescriptor(
            HogConfig(n_bins=18, signed=True, voting="count", interpolate=False)
        ),
        "9 bins, magnitude, NO interp": HogDescriptor(
            HogConfig(interpolate=False)
        ),
        "9 bins, count voting": HogDescriptor(
            HogConfig(voting="count", interpolate=False)
        ),
        "18 bins signed, magnitude": HogDescriptor(
            HogConfig(n_bins=18, signed=True)
        ),
        "no block normalisation": HogDescriptor(HogConfig(normalization="none")),
    }

    def run():
        return {name: _probe_accuracy(ext, windows) for name, ext in variants.items()}

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: HoG design choices (held-out window accuracy)")
    print(
        format_table(
            ["variant", "accuracy"],
            [[name, format_sig(score)] for name, score in scores.items()],
        )
    )
    assert all(score > 0.8 for score in scores.values()), scores


def test_bench_napprox_precision_ablation(benchmark, windows, capsys):
    precisions = [8, 16, 32, 64, 128]

    def run():
        return {
            window: _probe_accuracy(
                NApproxDescriptor(NApproxConfig(quantized=True, window=window)),
                windows,
            )
            for window in precisions
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: NApprox input precision (held-out window accuracy)")
    print(
        format_table(
            ["spike window", "accuracy"],
            [[f"{w}-spike", format_sig(scores[w])] for w in precisions],
        )
    )
    # Precision should not hurt: the finest window at least matches the
    # coarsest.
    assert scores[128] >= scores[8] - 0.05
