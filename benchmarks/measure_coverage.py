"""Measure tier-1 line coverage of ``src/repro`` with the stdlib only.

CI enforces coverage through ``pytest-cov`` (see the ``coverage`` job in
``.github/workflows/ci.yml``), but that plugin is not part of the local
environment. This script produces the comparable number without any
third-party dependency: a ``sys.settrace`` tracer records every executed
line in ``src/repro`` while the tier-1 suite runs in-process, and the
executable-line universe per file is derived from the compiled code
objects (``dis.findlinestarts``) — the same line table ``coverage.py``
starts from. Numbers agree with pytest-cov to within a couple of points
(import-time statements of modules loaded before tracing starts are the
main undercount, which errs in the safe direction for setting a floor).

Use it to (re)measure the baseline behind the CI job's
``--cov-fail-under`` floor:

    PYTHONPATH=src python benchmarks/measure_coverage.py \
        --json /tmp/coverage.json --fail-under 80

The traced run is several times slower than the plain suite; budget a
few minutes.
"""

import argparse
import dis
import fnmatch
import json
import sys
import threading
from pathlib import Path
from types import CodeType

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_PACKAGE = REPO_ROOT / "src" / "repro"


def executable_lines(path: Path) -> set:
    """Line numbers that carry bytecode, over all nested code objects."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line for _, line in dis.findlinestarts(obj) if line is not None
        )
        stack.extend(
            const for const in obj.co_consts if isinstance(const, CodeType)
        )
    return lines


class LineCollector:
    """A settrace hook that records executed lines under one prefix."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.executed = {}

    def _local(self, frame, event, arg):
        if event == "line":
            self.executed[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def __call__(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefix):
            return None
        self.executed.setdefault(filename, set())
        return self._local

    def install(self):
        threading.settrace(self)
        sys.settrace(self)

    def uninstall(self):
        sys.settrace(None)
        threading.settrace(None)


def run_suite(pytest_args) -> "tuple[int, LineCollector]":
    """Run pytest in-process with line tracing over ``src/repro``."""
    import pytest

    collector = LineCollector(str(SRC_PACKAGE))
    collector.install()
    try:
        exit_code = pytest.main(list(pytest_args))
    finally:
        collector.uninstall()
    return exit_code, collector


def report(collector: LineCollector, omit):
    """Per-file and total coverage from one traced run."""
    files = []
    total_lines = total_covered = 0
    for path in sorted(SRC_PACKAGE.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        if any(fnmatch.fnmatch(rel, pattern) for pattern in omit):
            continue
        lines = executable_lines(path)
        covered = collector.executed.get(str(path), set()) & lines
        total_lines += len(lines)
        total_covered += len(covered)
        files.append(
            {
                "file": rel,
                "lines": len(lines),
                "covered": len(covered),
                "percent": 100.0 * len(covered) / len(lines) if lines else 100.0,
            }
        )
    percent = 100.0 * total_covered / total_lines if total_lines else 100.0
    return {
        "tool": "measure_coverage.py (stdlib settrace)",
        "percent": percent,
        "lines": total_lines,
        "covered": total_covered,
        "files": files,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fail-under", type=float, default=None,
        help="exit non-zero when total coverage is below this percent",
    )
    parser.add_argument(
        "--json", default=None, help="write the full per-file report here"
    )
    parser.add_argument(
        "--omit", action="append", default=[],
        help="glob of repo-relative files to exclude (repeatable)",
    )
    parser.add_argument(
        "pytest_args", nargs="*", default=None,
        help="arguments for the in-process pytest run (default: -x -q)",
    )
    args = parser.parse_args()

    exit_code, collector = run_suite(args.pytest_args or ["-x", "-q"])
    if exit_code != 0:
        print(f"FAIL: pytest exited {exit_code}; no coverage verdict",
              file=sys.stderr)
        return exit_code

    result = report(collector, args.omit)
    width = max(len(entry["file"]) for entry in result["files"])
    for entry in result["files"]:
        print(
            f"{entry['file']:<{width}} {entry['covered']:5d}/{entry['lines']:<5d}"
            f" {entry['percent']:6.1f}%"
        )
    print(
        f"{'TOTAL':<{width}} {result['covered']:5d}/{result['lines']:<5d}"
        f" {result['percent']:6.1f}%"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.fail_under is not None and result["percent"] < args.fail_under:
        print(
            f"FAIL: coverage {result['percent']:.1f}% "
            f"< floor {args.fail_under:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
