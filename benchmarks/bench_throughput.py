"""Section 5.2 throughput anchors and simulator performance.

Checks the paper's per-module throughputs (15/31/1000 cells/s), the
full-HD workload arithmetic (57,749 cells per frame, ~1.5M cells/s at
26 fps), and benchmarks the tick-level simulator on one NApprox cell.
"""

import numpy as np

from repro.analysis import format_table
from repro.detection.pyramid import FULL_HD_CELL_GRIDS, full_hd_cell_count
from repro.napprox import NApproxCellRunner
from repro.napprox.validation import random_cell_patch
from repro.power import (
    module_throughput_cells_per_second,
    modules_required,
    system_cell_rate,
)


def test_throughput_anchors(benchmark, capsys):
    benchmark.pedantic(full_hd_cell_count, rounds=1, iterations=1)
    print()
    print("Section 5.2 reproduction: throughput arithmetic")
    rows = [
        [f"{w}-spike module", f"{module_throughput_cells_per_second(w)} cells/s",
         f"paper: {p}"]
        for w, p in [(64, 15), (32, 31), (4, 250), (1, 1000)]
    ]
    rows.append(
        ["full-HD cells/frame", str(full_hd_cell_count()), "paper: 57749"]
    )
    rows.append(
        ["cells/s @26fps", f"{system_cell_rate(26.0):.3g}", "paper: ~1.5M"]
    )
    rows.append(
        ["NApprox modules @26fps", str(modules_required(64)), "paper: ~100k"]
    )
    print(format_table(["quantity", "value", "reference"], rows))

    assert module_throughput_cells_per_second(64) == 15
    assert module_throughput_cells_per_second(32) == 31
    assert module_throughput_cells_per_second(1) == 1000
    assert full_hd_cell_count() == 57749
    layer_sizes = [w * h for w, h in FULL_HD_CELL_GRIDS]
    assert layer_sizes[0] == 240 * 135


def test_bench_simulated_cell(benchmark):
    """Wall-clock cost of one NApprox cell on the tick-level simulator."""
    runner = NApproxCellRunner(window=32, rng=0)
    patch = random_cell_patch(np.random.default_rng(1))
    histogram = benchmark(runner.extract, patch)
    assert histogram.shape == (18,)


def test_bench_simulator_tick_rate(benchmark):
    """Raw core-tick throughput of the simulator (22-core system)."""
    runner = NApproxCellRunner(window=32, rng=0)
    raster = np.zeros((50, 100), dtype=bool)
    raster[::2, ::3] = True
    gate = np.zeros((50, 1), dtype=bool)

    def run():
        return runner._simulator.run(50, {"pixels": raster, "gate": gate})

    result = benchmark(run)
    assert result.ticks == 50
