"""Benchmark-suite fixtures: shared small-scale experiment data."""

import pytest

from repro.experiments.setup import make_experiment_data


@pytest.fixture(scope="session")
def bench_data():
    """The standard split used by the figure-reproduction benches."""
    return make_experiment_data(
        n_positive=120,
        n_negative=240,
        n_negative_images=6,
        n_test_scenes=15,
        scene_shape=(200, 260),
        rng=7,
    )
