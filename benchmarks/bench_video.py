"""Streaming-video benchmark: fps, joules/frame, and cache locality.

Streams synthetic sequences at every motion level through the frame
pipeline (``repro.video``) and records, per motion level, the sustained
frame rate, the attributed joules/frame, and the serve LRU hit rate —
the measured counterpart of the paper's 26 fps full-HD deployment
claim. Before timing anything the bench runs a conformance probe: the
same sequence must produce bit-identical per-frame detections on the
reference, batch, and event engines and across ``--workers 1`` and
``--workers 2`` sharded serving; a mismatch aborts with exit code 2.

Usage::

    PYTHONPATH=src python benchmarks/bench_video.py --quick

``--quick`` keeps the run within a CI smoke budget; ``--check`` exits
non-zero unless static-background sequences beat full-motion ones on
cache hit rate by at least ``--min-cache-separation``. The payload is
written to ``BENCH_video.json`` (``--output``) and gated against the
committed baseline by ``benchmarks/check_regression.py``.

Exit codes: 0 ok, 1 ``--check`` failure, 2 conformance mismatch.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import InferenceService, ShardedInferenceService  # noqa: E402
from repro.video import (  # noqa: E402
    MOTION_LEVELS,
    VideoConfig,
    VideoPipeline,
    VideoPipelineConfig,
    build_video_workload,
    synthesize_sequence,
)

#: Seed of every sequence the bench streams (parity needs fixed pixels).
SEQUENCE_SEED = 3


def _pipeline_config(workload, args):
    """The shared pipeline configuration for every run."""
    return VideoPipelineConfig(
        scale_factor=args.scale_factor,
        max_levels=args.max_levels,
        feature_scale=workload.feature_scale,
    )


def _run_sequence(workload, scorer, sequence, args, workers=0):
    """Stream ``sequence`` through a fresh service; returns the report."""
    if workers > 0:
        service = ShardedInferenceService(
            scorer,
            workers=workers,
            max_batch_size=args.max_batch_size,
            cache_capacity=args.cache_capacity,
        )
    else:
        service = InferenceService(
            scorer,
            max_batch_size=args.max_batch_size,
            cache_capacity=args.cache_capacity,
        )
    with service:
        pipeline = VideoPipeline(
            workload.extractor, service, _pipeline_config(workload, args)
        )
        return pipeline.run(sequence)


def run_conformance(workload, args):
    """Bit-identity probe across engines and worker counts.

    Returns the parity payload; detections must match byte for byte
    because content coding pins every window's raster and NMS breaks
    ties stably — any divergence is a real engine or sharding bug.
    """
    sequence = synthesize_sequence(
        VideoConfig(
            shape=args.parity_shape,
            n_frames=args.parity_frames,
            motion="walk",
        ),
        rng=SEQUENCE_SEED,
    )
    keys = {}
    for engine in ("reference", "batch", "event"):
        report = _run_sequence(
            workload, workload.scorer_for_engine(engine), sequence, args
        )
        keys[engine] = [frame.detections_key() for frame in report.frames]
        print(
            f"conformance: engine={engine}: "
            f"{sum(len(k) for k in keys[engine])} detections over "
            f"{len(keys[engine])} frames"
        )
    engines_identical = keys["reference"] == keys["batch"] == keys["event"]

    worker_keys = {}
    for workers in (1, 2):
        report = _run_sequence(
            workload,
            workload.scorer_for_engine("batch"),
            sequence,
            args,
            workers=workers,
        )
        worker_keys[workers] = [frame.detections_key() for frame in report.frames]
        print(f"conformance: workers={workers}: "
              f"{sum(len(k) for k in worker_keys[workers])} detections")
    workers_identical = (
        keys["batch"] == worker_keys[1] == worker_keys[2]
    )
    return {
        "engines": ["reference", "batch", "event"],
        "engines_identical": engines_identical,
        "workers": [0, 1, 2],
        "workers_identical": workers_identical,
        "frames": args.parity_frames,
    }


def run_motion_sweep(workload, args):
    """fps / joules/frame / hit rate at every motion level."""
    motions = {}
    for motion in MOTION_LEVELS:
        sequence = synthesize_sequence(
            VideoConfig(shape=args.shape, n_frames=args.frames, motion=motion),
            rng=SEQUENCE_SEED,
        )
        report = _run_sequence(workload, workload.scorer, sequence, args)
        entry = {
            "fps": report.fps,
            "joules_per_frame": report.joules_per_frame,
            "cache_hit_rate": report.cache_hit_rate,
            "windows_scored": report.windows_scored,
            "degraded_frames": report.degraded_frames,
        }
        if report.curve is not None:
            entry["log_average_miss_rate"] = report.curve.log_average_miss_rate()
        motions[motion] = entry
        print(
            f"motion={motion:<7s} {report.fps:7.2f} fps  "
            f"{report.joules_per_frame * 1e6:8.1f} uJ/frame  "
            f"hit rate {report.cache_hit_rate:6.1%}  "
            f"{report.windows_scored} windows"
        )
    return motions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=10, help="frames per motion run")
    parser.add_argument(
        "--shape", default="240x320", metavar="HxW", help="frame shape in pixels"
    )
    parser.add_argument("--ticks", type=int, default=6, help="scorer spike window")
    parser.add_argument("--hidden", type=int, default=16, help="classifier hidden width")
    parser.add_argument("--n-train", type=int, default=48, help="training windows per class")
    parser.add_argument("--epochs", type=int, default=12, help="classifier training epochs")
    parser.add_argument("--scale-factor", type=float, default=1.2, help="pyramid step")
    parser.add_argument("--max-levels", type=int, default=6, help="pyramid depth cap")
    parser.add_argument("--max-batch-size", type=int, default=64)
    parser.add_argument("--cache-capacity", type=int, default=8192)
    parser.add_argument(
        "--parity-frames", type=int, default=3,
        help="frames in the engine/worker conformance probe",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller frames and sequence (CI smoke budget)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless static beats full-motion cache hit "
        "rate by --min-cache-separation",
    )
    parser.add_argument("--min-cache-separation", type=float, default=0.25)
    parser.add_argument("--output", default="BENCH_video.json")
    args = parser.parse_args()

    if args.quick:
        args.frames = min(args.frames, 6)
        args.shape = "160x224"
        args.n_train = 24
        args.epochs = 8
        args.parity_frames = min(args.parity_frames, 2)
    try:
        height, width = (int(v) for v in args.shape.lower().split("x"))
    except ValueError:
        raise SystemExit(f"bad --shape {args.shape!r}, want HxW")
    args.shape = (height, width)
    args.parity_shape = (min(height, 160), min(width, 224))

    print(
        f"building workload: ticks={args.ticks} hidden={args.hidden} "
        f"n_train={args.n_train} epochs={args.epochs}"
    )
    workload = build_video_workload(
        engine="batch",
        ticks=args.ticks,
        hidden=args.hidden,
        n_train=args.n_train,
        epochs=args.epochs,
    )

    parity = run_conformance(workload, args)
    if not (parity["engines_identical"] and parity["workers_identical"]):
        print(
            "FAIL: per-frame detections diverged across engines or "
            "worker counts; refusing to record timings",
            file=sys.stderr,
        )
        return 2

    motions = run_motion_sweep(workload, args)

    payload = {
        "workload": {
            "frames": args.frames,
            "shape": list(args.shape),
            "ticks": args.ticks,
            "hidden": args.hidden,
            "n_train": args.n_train,
            "epochs": args.epochs,
            "scale_factor": args.scale_factor,
            "max_levels": args.max_levels,
        },
        "service": {
            "max_batch_size": args.max_batch_size,
            "cache_capacity": args.cache_capacity,
        },
        "motions": motions,
        "parity": parity,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        separation = (
            motions["static"]["cache_hit_rate"]
            - motions["full"]["cache_hit_rate"]
        )
        if separation < args.min_cache_separation:
            print(
                f"FAIL: static-vs-full cache hit separation "
                f"{separation:.2f} below the "
                f"{args.min_cache_separation:.2f} floor",
                file=sys.stderr,
            )
            return 1
        print(
            f"check passed: cache separation {separation:.2f} "
            f">= {args.min_cache_separation:.2f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
