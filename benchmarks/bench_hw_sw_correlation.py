"""Section 3.1: NApprox corelet-on-simulator vs software-model correlation.

The paper reports ">99.5% correlation" over a thousand INRIA training
cells at equal quantisation width. The tick-level simulation dominates
runtime, so the bench uses a reduced cell count; the per-cell timing is
the benchmark value.
"""

from repro.napprox import correlate_corelet_vs_software


def test_bench_hw_sw_correlation(benchmark, capsys):
    report = benchmark.pedantic(
        lambda: correlate_corelet_vs_software(n_cells=40, window=64, rng=42),
        rounds=1,
        iterations=1,
    )
    print()
    print("Section 3.1 reproduction: corelet vs software model")
    print(f"  cells compared:        {report.n_cells} (paper: 1000)")
    print(f"  correlation:           {report.correlation:.4f} (paper: >0.995)")
    print(f"  mean |error| (votes):  {report.mean_absolute_error:.3f}")
    print(f"  exact-match fraction:  {report.exact_match_fraction:.3f}")

    assert report.correlation > 0.995
