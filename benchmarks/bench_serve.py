"""Sustained req/s: micro-batching service vs sequential per-request scoring.

The workload is the NApprox cell unit — 10x10 pixel patches through the
22-core HoG cell module — served as concurrent single-patch requests.
The baseline is what a naive deployment does: one engine call per
request, no coalescing. The service wins by draining the bounded queue
into micro-batches for the PR-1 vectorized engine, so the per-tick cost
is amortised across every in-flight request.

Conformance is asserted before timing: served histograms must be
bit-identical to direct ``extract_batch`` calls.

The load is timed in paired arms — the observability layer fully on
(hardware counters + flight recorder + span tracing; the shipping
configuration and the headline number) vs configured off — after an
untimed warmup, with the arm order alternating per repeat; the median
of per-pair throughput ratios lands in ``BENCH_serve.json`` as
``obs_overhead_fraction``. The same paired measurement then runs
through the forked worker tier (``ShardedInferenceService``,
workers=2), where observability additionally pays for cross-process
span and metrics-delta shipping, landing as
``sharded_obs_overhead_fraction``. The acceptance budget for both is
<=5 % (DESIGN.md §12, §16), enforced against the committed baseline by
``benchmarks/check_regression.py``.

Run standalone (wall-clock timing, machine-readable JSON to
``BENCH_serve.json`` at the repo root):

    PYTHONPATH=src python benchmarks/bench_serve.py --quick

``--quick`` keeps the run within a CI smoke budget; ``--check`` exits
non-zero below the acceptance speedup of 4x at concurrency 32.
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.obs import flight, hwcounters, tracing
from repro.serve import (
    HardwarePacedModel,
    InferenceService,
    NApproxCellModel,
    ShardedInferenceService,
    closed_loop,
    random_patch_rows,
    sequential_baseline,
)
from repro.truenorth.power import TICK_SECONDS

REPO_ROOT = Path(__file__).resolve().parent.parent


def _configure_obs(enabled: bool) -> None:
    """Flip the whole observability layer on or off for a timed arm.

    Covers every telemetry source the serving path touches: hardware
    activity counters, the flight recorder, and span tracing (whose
    cross-process shipping is the sharded tier's marginal cost).
    """
    hwcounters.configure(enabled)
    flight.configure(enabled)
    tracing.configure(enabled)


def _timed_load(model, rows, args):
    """One closed-loop service run; returns ``(report, snapshot)``."""
    service = InferenceService(
        model,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        cache_capacity=args.cache_capacity,
    )
    with service:
        report = closed_loop(
            service, rows, concurrency=args.concurrency, chunk_size=1
        )
        snapshot = service.stats.snapshot()
    return report, snapshot


def _sharded_service(model, args, workers):
    """The long-lived sharded service for the obs-overhead arms.

    One service serves both arms: the work messages carry the
    telemetry/tracing flags per batch, so toggling the parent-side
    configuration flips the whole fleet per run without re-forking —
    fork/teardown cost never touches a timed arm. The cache is
    disabled because the same rows repeat across runs, and an LRU hit
    would bypass the very engine-and-shipping path the measurement is
    about.
    """
    return ShardedInferenceService(
        model,
        workers=workers,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        cache_capacity=0,
    )


def run_workers_sweep(args):
    """Throughput of the sharded worker tier at N ∈ ``--sweep-workers``.

    The workload is device-paced: each micro-batch call holds its
    worker for ``--sweep-pace-ms`` of wall time, modeling the service
    interval of one chip assembly per batch — spike-window playback
    (``window`` ticks at ``TICK_SECONDS`` per tick, the chip's
    real-time cadence) plus the host-link round trip, which dominates
    it. Scale-out buys the ability to *overlap* those device intervals
    across assemblies, and that is exactly what the sweep measures; the
    pace is chosen to dominate host compute per batch so the numbers
    stay meaningful on a single-CPU runner (a CPU-bound sweep would
    measure process contention, not serving architecture).

    Before timing, every shard count is probed for bit-identity against
    the direct engine call; after timing, the per-N activity ledgers
    must agree exactly on router/cross-chip hop totals (scale-out
    replicates the placed model per worker, so cross-chip traffic per
    request is invariant in N — the "bounded cross-chip traffic"
    guarantee) and the attributed energy must match across N.

    Returns the ``workers_sweep`` payload dict, or ``None`` on an
    identity violation (the caller fails the bench).
    """
    worker_counts = tuple(
        int(n) for n in str(args.sweep_workers).split(",") if n.strip()
    )
    pace_s = args.sweep_pace_ms / 1e3
    window_s = args.sweep_window * TICK_SECONDS
    if pace_s < window_s:
        print(
            f"WARN: sweep pace {pace_s * 1e3:.0f} ms is below the "
            f"real-time spike window ({window_s * 1e3:.0f} ms); batches "
            "cannot finish faster than the window on hardware",
        )
    base = NApproxCellModel(
        window=args.sweep_window,
        engine="batch",
        cores_per_chip=args.cores_per_chip,
    )
    rows = random_patch_rows(args.sweep_requests, rng=1)
    probe = random_patch_rows(8, rng=2)
    direct = base(probe)

    print(
        f"workers sweep: pace {pace_s * 1e3:.0f} ms/batch "
        f"(window {args.sweep_window} at {TICK_SECONDS * 1e3:.0f} ms/tick "
        f"+ host link), {args.sweep_requests} requests, "
        f"batch {args.sweep_batch_size}"
    )
    points = []
    for workers in worker_counts:
        service = ShardedInferenceService(
            HardwarePacedModel(base, min_batch_seconds=pace_s),
            workers=workers,
            max_batch_size=args.sweep_batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            cache_capacity=0,  # unique rows: keep every request on-engine
        )
        with service:
            served = service.score_many(probe)
            if not np.array_equal(served, direct):
                print(
                    f"FAIL: workers={workers} served results differ from "
                    "direct calls",
                    file=sys.stderr,
                )
                return None
            report = closed_loop(
                service, rows, concurrency=args.concurrency, chunk_size=1
            )
            snapshot = service.stats.snapshot()
        if not report.accounted:
            print(
                f"FAIL: workers={workers} lost or failed requests",
                file=sys.stderr,
            )
            return None
        counters = snapshot["counters"]
        points.append(
            {
                "workers": workers,
                "requests_per_second": report.requests_per_second,
                "seconds": report.seconds,
                "mean_batch_size": snapshot["mean_batch_size"],
                "dispatches": counters.get("dispatches", 0),
                "router_hops": counters.get("hw_router_hops", 0),
                "cross_chip_hops": counters.get("hw_cross_chip_hops", 0),
                "intra_chip_hops": counters.get("hw_intra_chip_hops", 0),
                "energy_nj_total": snapshot["energy_nj"]["total"],
                "energy_requests": snapshot["energy_nj"]["count"],
            }
        )

    # Cross-N invariants: integer hop ledgers identical, energy equal to
    # float tolerance (same per-request energies, summed in per-N batch
    # order), cross-chip traffic per request constant.
    first = points[0]
    for point in points[1:]:
        for key in ("router_hops", "cross_chip_hops", "intra_chip_hops"):
            if point[key] != first[key]:
                print(
                    f"FAIL: workers={point['workers']} {key} "
                    f"{point[key]} != {first[key]} at workers="
                    f"{first['workers']}",
                    file=sys.stderr,
                )
                return None
        if not np.isclose(
            point["energy_nj_total"], first["energy_nj_total"], rtol=1e-9
        ):
            print(
                f"FAIL: workers={point['workers']} energy "
                f"{point['energy_nj_total']} != {first['energy_nj_total']}",
                file=sys.stderr,
            )
            return None

    base_rate = points[0]["requests_per_second"]
    for point in points:
        point["scaling"] = (
            point["requests_per_second"] / base_rate if base_rate else 0.0
        )
        hops = point["router_hops"]
        point["cross_chip_fraction"] = (
            point["cross_chip_hops"] / hops if hops else 0.0
        )
        print(
            f"  workers={point['workers']}: "
            f"{point['requests_per_second']:7.1f} req/s "
            f"({point['scaling']:.2f}x vs workers={points[0]['workers']}, "
            f"cross-chip {point['cross_chip_fraction']:.0%} of "
            f"{point['router_hops']} hops)"
        )
    return {
        "pace_seconds_per_batch": pace_s,
        "tick_seconds": TICK_SECONDS,
        "window": args.sweep_window,
        "cores_per_chip": args.cores_per_chip,
        "requests": args.sweep_requests,
        "batch_size": args.sweep_batch_size,
        "concurrency": args.concurrency,
        "points": points,
    }


def run_bench(args) -> int:
    model = NApproxCellModel(window=args.window, engine="batch")
    rows = random_patch_rows(
        args.requests, rng=0, duplicate_fraction=args.duplicate_fraction
    )

    # Conformance gate: served results must be bit-identical to the
    # direct engine call on the same patches. The probe service is
    # discarded so its cache never pre-warms the timed runs.
    with InferenceService(
        model, max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms
    ) as probe_service:
        probe = rows[: min(8, len(rows))]
        served = probe_service.score_many(probe)
        direct = model(probe)
        if not np.array_equal(served, direct):
            print("FAIL: served results differ from direct calls", file=sys.stderr)
            return 2

    # Timed loads, paired on/off arms: observability fully on (the
    # shipping configuration and the headline number) vs hardware
    # counters, flight recorder, and span tracing configured off — the
    # baseline the <=5 % obs-overhead budget is measured against. A
    # warmup load pays the cold-start costs outside the timed arms,
    # the arm order alternates per repeat, and the overhead is the
    # *median of per-pair ratios*: adjacent runs share machine state,
    # so each ratio cancels load drift a best-of across distant runs
    # cannot.
    # The arms run a longer load than the nominal request count: the
    # micro-batcher's formation dynamics are chaotic at this scale
    # (a run that happens to form 24-row batches is ~30 % slower than
    # one forming 32-row batches), and only averaging over many batch
    # cycles separates a few-percent telemetry cost from that noise.
    arm_rows = random_patch_rows(
        args.requests * args.overhead_load_multiplier, rng=0,
        duplicate_fraction=args.duplicate_fraction,
    )
    on_runs, off_runs = [], []
    sharded_on, sharded_off = [], []
    pair_overheads, sharded_pair_overheads = [], []
    try:
        _configure_obs(True)
        _timed_load(model, rows, args)  # warmup, untimed
        for repeat in range(args.overhead_repeats):
            rates = {}
            for enabled in (True, False) if repeat % 2 == 0 else (False, True):
                _configure_obs(enabled)
                run = _timed_load(model, arm_rows, args)
                (on_runs if enabled else off_runs).append(run)
                rates[enabled] = run[0].requests_per_second
            if rates[False]:
                pair_overheads.append(1.0 - rates[True] / rates[False])
        # Same measurement through the forked worker tier, where the
        # obs layer additionally ships spans and metrics deltas across
        # the process boundary.
        _configure_obs(True)
        with _sharded_service(model, args, args.sharded_workers) as sharded:
            closed_loop(  # warmup, untimed
                sharded, rows, concurrency=args.concurrency, chunk_size=1
            )
            for repeat in range(args.overhead_repeats):
                rates = {}
                arm_order = (
                    (True, False) if repeat % 2 == 0 else (False, True)
                )
                for enabled in arm_order:
                    _configure_obs(enabled)
                    run = closed_loop(
                        sharded, arm_rows,
                        concurrency=args.concurrency, chunk_size=1,
                    )
                    (sharded_on if enabled else sharded_off).append(run)
                    rates[enabled] = run.requests_per_second
                if rates[False]:
                    sharded_pair_overheads.append(
                        1.0 - rates[True] / rates[False]
                    )
    finally:
        _configure_obs(True)
    report, snapshot = max(
        on_runs, key=lambda pair: pair[0].requests_per_second
    )
    report_off, _ = max(
        off_runs, key=lambda pair: pair[0].requests_per_second
    )
    obs_overhead = (
        statistics.median(pair_overheads) if pair_overheads else 0.0
    )
    sharded_report = max(
        sharded_on, key=lambda run: run.requests_per_second
    )
    sharded_report_off = max(
        sharded_off, key=lambda run: run.requests_per_second
    )
    sharded_obs_overhead = (
        statistics.median(sharded_pair_overheads)
        if sharded_pair_overheads
        else 0.0
    )

    seq_rows = rows[: args.sequential_requests]
    started = time.perf_counter()
    sequential_baseline(model, seq_rows)
    seq_seconds = time.perf_counter() - started
    seq_rate = len(seq_rows) / seq_seconds

    speedup = report.requests_per_second / seq_rate if seq_rate else 0.0
    print(
        f"workload: NApprox cell window={args.window} "
        f"({model.runner.core_count} cores)"
    )
    print(
        f"sequential: {len(seq_rows):4d} requests in {seq_seconds:6.2f}s "
        f"= {seq_rate:7.2f} req/s"
    )
    print(
        f"service(c={args.concurrency}): {report.completed:4d} requests in "
        f"{report.seconds:6.2f}s = {report.requests_per_second:7.2f} req/s"
    )
    print(
        f"speedup: {speedup:.1f}x  "
        f"(mean batch {snapshot['mean_batch_size']:.1f}, "
        f"p99 latency {snapshot['latency_ms']['p99']:.1f} ms, "
        f"accounted={report.accounted})"
    )
    print(
        f"obs overhead: {obs_overhead * 100:+.1f}% "
        f"(telemetry off: {report_off.requests_per_second:7.2f} req/s, "
        f"mean energy {snapshot['energy_nj']['mean']:.1f} nJ/request)"
    )
    print(
        f"sharded(w={args.sharded_workers}) obs overhead: "
        f"{sharded_obs_overhead * 100:+.1f}% "
        f"(on: {sharded_report.requests_per_second:7.2f} req/s, "
        f"off: {sharded_report_off.requests_per_second:7.2f} req/s; "
        "includes cross-process span + metrics-delta shipping)"
    )

    sweep = None
    if args.workers_sweep:
        sweep = run_workers_sweep(args)
        if sweep is None:
            return 2

    payload = {
        "benchmark": "bench_serve",
        "workload": {
            "kind": "napprox-cell",
            "window": args.window,
            "cores": model.runner.core_count,
            "requests": args.requests,
            "duplicate_fraction": args.duplicate_fraction,
        },
        "service": {
            "concurrency": args.concurrency,
            "max_batch_size": args.max_batch_size,
            "max_wait_ms": args.max_wait_ms,
            "queue_capacity": args.queue_capacity,
            "cache_capacity": args.cache_capacity,
        },
        "sequential_requests_per_second": seq_rate,
        "service_requests_per_second": report.requests_per_second,
        "telemetry_off_requests_per_second": report_off.requests_per_second,
        "obs_overhead_fraction": obs_overhead,
        "overhead_requests_per_arm_run": len(arm_rows),
        "overhead_repeats": args.overhead_repeats,
        "sharded_workers": args.sharded_workers,
        "sharded_requests_per_second": sharded_report.requests_per_second,
        "sharded_telemetry_off_requests_per_second": (
            sharded_report_off.requests_per_second
        ),
        "sharded_obs_overhead_fraction": sharded_obs_overhead,
        "speedup": speedup,
        "load": report.as_dict(),
        "stats": snapshot,
    }
    if sweep is not None:
        payload["workers_sweep"] = sweep
    output = Path(args.output) if args.output else REPO_ROOT / "BENCH_serve.json"
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    timed = [run for run, _ in on_runs + off_runs] + sharded_on + sharded_off
    if not all(run.accounted for run in timed):
        print("FAIL: requests lost or failed", file=sys.stderr)
        return 2
    if args.check and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.1f}x < required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--window", type=int, default=32, help="spike window")
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--queue-capacity", type=int, default=512)
    parser.add_argument(
        "--cache-capacity", type=int, default=4096,
        help="LRU entries (0 disables; unique requests never hit anyway)",
    )
    parser.add_argument("--duplicate-fraction", type=float, default=0.0)
    parser.add_argument(
        "--sequential-requests", type=int, default=24,
        help="requests timed on the sequential baseline (it is slow)",
    )
    parser.add_argument(
        "--overhead-repeats", type=int, default=3,
        help="telemetry on/off load pairs (order alternating, after an "
        "untimed warmup); the median per-pair ratio feeds the "
        "obs_overhead_fraction measurements",
    )
    parser.add_argument(
        "--sharded-workers", type=int, default=2,
        help="forked worker count for the sharded obs-overhead arms "
        "(sharded_obs_overhead_fraction in the payload)",
    )
    parser.add_argument(
        "--overhead-load-multiplier", type=int, default=3,
        help="the timed on/off arms score this multiple of --requests "
        "(averaging over enough batch cycles to separate a few-percent "
        "telemetry cost from batch-formation noise)",
    )
    parser.add_argument(
        "--workers-sweep", action="store_true",
        help="also sweep the sharded worker tier (hardware-paced "
        "workload) and record workers_sweep in the payload",
    )
    parser.add_argument(
        "--sweep-workers", default="1,2,4",
        help="comma-separated shard counts for --workers-sweep",
    )
    parser.add_argument(
        "--sweep-requests", type=int, default=96,
        help="requests per shard count in --workers-sweep",
    )
    parser.add_argument(
        "--sweep-window", type=int, default=4,
        help="spike window for the --workers-sweep model (kept small so "
        "host compute stays far below the pace)",
    )
    parser.add_argument(
        "--sweep-pace-ms", type=float, default=300.0,
        help="modeled device service interval per micro-batch during "
        "--workers-sweep: spike-window playback plus the host-link "
        "round trip (must dominate host compute for the sweep to "
        "measure scale-out rather than CPU contention)",
    )
    parser.add_argument(
        "--sweep-batch-size", type=int, default=4,
        help="micro-batch cap during --workers-sweep (small, so the "
        "hardware pace dominates host compute per batch)",
    )
    parser.add_argument(
        "--cores-per-chip", type=int, default=8,
        help="chip capacity for the placed sweep model (22 cores across "
        "ceil(22/N) chips drives the cross-chip hop accounting)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke setting: window 16, 96 requests, 12 sequential",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the speedup misses --min-speedup",
    )
    parser.add_argument("--min-speedup", type=float, default=4.0)
    parser.add_argument(
        "--output", default=None,
        help="JSON result path (default: BENCH_serve.json at repo root)",
    )
    args = parser.parse_args()
    if args.quick:
        args.window = min(args.window, 16)
        args.requests = min(args.requests, 96)
        args.sequential_requests = min(args.sequential_requests, 12)
        args.sweep_requests = min(args.sweep_requests, 96)
    args.sequential_requests = min(args.sequential_requests, args.requests)
    return run_bench(args)


if __name__ == "__main__":
    sys.exit(main())
