"""Sustained req/s: micro-batching service vs sequential per-request scoring.

The workload is the NApprox cell unit — 10x10 pixel patches through the
22-core HoG cell module — served as concurrent single-patch requests.
The baseline is what a naive deployment does: one engine call per
request, no coalescing. The service wins by draining the bounded queue
into micro-batches for the PR-1 vectorized engine, so the per-tick cost
is amortised across every in-flight request.

Conformance is asserted before timing: served histograms must be
bit-identical to direct ``extract_batch`` calls.

The load is timed twice — once with the observability layer fully on
(hardware counters + flight recorder; the shipping configuration and
the headline number) and once with it configured off — and the relative
throughput cost lands in ``BENCH_serve.json`` as
``obs_overhead_fraction``. The acceptance budget is <=5 %
(DESIGN.md §12), enforced against the committed baseline by
``benchmarks/check_regression.py``.

Run standalone (wall-clock timing, machine-readable JSON to
``BENCH_serve.json`` at the repo root):

    PYTHONPATH=src python benchmarks/bench_serve.py --quick

``--quick`` keeps the run within a CI smoke budget; ``--check`` exits
non-zero below the acceptance speedup of 4x at concurrency 32.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.obs import flight, hwcounters
from repro.serve import (
    InferenceService,
    NApproxCellModel,
    closed_loop,
    random_patch_rows,
    sequential_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _timed_load(model, rows, args):
    """One closed-loop service run; returns ``(report, snapshot)``."""
    service = InferenceService(
        model,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        cache_capacity=args.cache_capacity,
    )
    with service:
        report = closed_loop(
            service, rows, concurrency=args.concurrency, chunk_size=1
        )
        snapshot = service.stats.snapshot()
    return report, snapshot


def run_bench(args) -> int:
    model = NApproxCellModel(window=args.window, engine="batch")
    rows = random_patch_rows(
        args.requests, rng=0, duplicate_fraction=args.duplicate_fraction
    )

    # Conformance gate: served results must be bit-identical to the
    # direct engine call on the same patches. The probe service is
    # discarded so its cache never pre-warms the timed runs.
    with InferenceService(
        model, max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms
    ) as probe_service:
        probe = rows[: min(8, len(rows))]
        served = probe_service.score_many(probe)
        direct = model(probe)
        if not np.array_equal(served, direct):
            print("FAIL: served results differ from direct calls", file=sys.stderr)
            return 2

    # Timed loads, interleaved best-of-N: observability fully on (the
    # shipping configuration and the headline number) vs hardware
    # counters and flight recorder configured off — the baseline the
    # <=5 % obs-overhead budget is measured against. Interleaving and
    # taking the best of each arm rejects machine noise that a single
    # pair of runs cannot.
    on_runs, off_runs = [], []
    try:
        for _ in range(args.overhead_repeats):
            hwcounters.configure(True)
            flight.configure(True)
            on_runs.append(_timed_load(model, rows, args))
            hwcounters.configure(False)
            flight.configure(False)
            off_runs.append(_timed_load(model, rows, args))
    finally:
        hwcounters.configure(True)
        flight.configure(True)
    report, snapshot = max(
        on_runs, key=lambda pair: pair[0].requests_per_second
    )
    report_off, _ = max(
        off_runs, key=lambda pair: pair[0].requests_per_second
    )
    obs_overhead = (
        1.0 - report.requests_per_second / report_off.requests_per_second
        if report_off.requests_per_second
        else 0.0
    )

    seq_rows = rows[: args.sequential_requests]
    started = time.perf_counter()
    sequential_baseline(model, seq_rows)
    seq_seconds = time.perf_counter() - started
    seq_rate = len(seq_rows) / seq_seconds

    speedup = report.requests_per_second / seq_rate if seq_rate else 0.0
    print(
        f"workload: NApprox cell window={args.window} "
        f"({model.runner.core_count} cores)"
    )
    print(
        f"sequential: {len(seq_rows):4d} requests in {seq_seconds:6.2f}s "
        f"= {seq_rate:7.2f} req/s"
    )
    print(
        f"service(c={args.concurrency}): {report.completed:4d} requests in "
        f"{report.seconds:6.2f}s = {report.requests_per_second:7.2f} req/s"
    )
    print(
        f"speedup: {speedup:.1f}x  "
        f"(mean batch {snapshot['mean_batch_size']:.1f}, "
        f"p99 latency {snapshot['latency_ms']['p99']:.1f} ms, "
        f"accounted={report.accounted})"
    )
    print(
        f"obs overhead: {obs_overhead * 100:+.1f}% "
        f"(telemetry off: {report_off.requests_per_second:7.2f} req/s, "
        f"mean energy {snapshot['energy_nj']['mean']:.1f} nJ/request)"
    )

    payload = {
        "benchmark": "bench_serve",
        "workload": {
            "kind": "napprox-cell",
            "window": args.window,
            "cores": model.runner.core_count,
            "requests": args.requests,
            "duplicate_fraction": args.duplicate_fraction,
        },
        "service": {
            "concurrency": args.concurrency,
            "max_batch_size": args.max_batch_size,
            "max_wait_ms": args.max_wait_ms,
            "queue_capacity": args.queue_capacity,
            "cache_capacity": args.cache_capacity,
        },
        "sequential_requests_per_second": seq_rate,
        "service_requests_per_second": report.requests_per_second,
        "telemetry_off_requests_per_second": report_off.requests_per_second,
        "obs_overhead_fraction": obs_overhead,
        "speedup": speedup,
        "load": report.as_dict(),
        "stats": snapshot,
    }
    output = Path(args.output) if args.output else REPO_ROOT / "BENCH_serve.json"
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    if not all(run.accounted for run, _ in on_runs + off_runs):
        print("FAIL: requests lost or failed", file=sys.stderr)
        return 2
    if args.check and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.1f}x < required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--window", type=int, default=32, help="spike window")
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--queue-capacity", type=int, default=512)
    parser.add_argument(
        "--cache-capacity", type=int, default=4096,
        help="LRU entries (0 disables; unique requests never hit anyway)",
    )
    parser.add_argument("--duplicate-fraction", type=float, default=0.0)
    parser.add_argument(
        "--sequential-requests", type=int, default=24,
        help="requests timed on the sequential baseline (it is slow)",
    )
    parser.add_argument(
        "--overhead-repeats", type=int, default=2,
        help="interleaved telemetry on/off load pairs; the best of each "
        "arm feeds the obs_overhead_fraction measurement",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke setting: window 16, 96 requests, 12 sequential",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the speedup misses --min-speedup",
    )
    parser.add_argument("--min-speedup", type=float, default=4.0)
    parser.add_argument(
        "--output", default=None,
        help="JSON result path (default: BENCH_serve.json at repo root)",
    )
    args = parser.parse_args()
    if args.quick:
        args.window = min(args.window, 16)
        args.requests = min(args.requests, 96)
        args.sequential_requests = min(args.sequential_requests, 12)
    args.sequential_requests = min(args.sequential_requests, args.requests)
    return run_bench(args)


if __name__ == "__main__":
    sys.exit(main())
