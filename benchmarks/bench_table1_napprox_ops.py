"""Table 1: conventional HoG operations vs their TrueNorth approximations.

For each row of the paper's Table 1, measure the agreement between the
original computation and the neuromorphic-primitive version on random
gradients, and benchmark the full NApprox cell-grid extraction.
"""

import numpy as np
import pytest

from repro.analysis import format_sig, format_table
from repro.hog.gradients import gradient_angle, gradient_magnitude
from repro.napprox import NApproxConfig, NApproxDescriptor
from repro.napprox.software import direction_tables, winner_votes


def _random_gradients(n=20000, seed=0):
    rng = np.random.default_rng(seed)
    ix = rng.integers(-64, 65, n).astype(np.float64)
    iy = rng.integers(-64, 65, n).astype(np.float64)
    nonzero = (ix != 0) | (iy != 0)
    return ix[nonzero], iy[nonzero]


def test_table1_component_agreement(benchmark, capsys):
    """Print per-component agreement between the two Table 1 columns."""
    ix, iy = benchmark.pedantic(_random_gradients, rounds=1, iterations=1)
    theta = np.radians(np.arange(18) * 20 + 10)
    projections = ix[:, None] * np.cos(theta) + iy[:, None] * np.sin(theta)

    # Gradient angle: arctan vs argmax of the directional projection.
    reference_bins = (gradient_angle(ix, iy, signed=True) // 20).astype(int)
    votes = winner_votes(np.maximum(projections, 0.0))
    approx_bins = votes.argmax(axis=1)
    voted = votes.any(axis=1)
    angle_agreement = float(
        (approx_bins[voted] == reference_bins[voted]).mean()
    )

    # Gradient magnitude: sqrt(Ix^2 + Iy^2) vs max projection.
    reference_mag = gradient_magnitude(ix, iy)
    approx_mag = projections.max(axis=1)
    magnitude_correlation = float(np.corrcoef(reference_mag, approx_mag)[0, 1])
    worst_ratio = float((approx_mag / reference_mag).min())

    # Pattern-matching gradients: (Ix, -Ix) rectified pair reconstructs Ix.
    reconstructed = np.maximum(ix, 0) - np.maximum(-ix, 0)
    gradient_exact = bool(np.array_equal(reconstructed, ix))

    # Integer direction tables vs exact cos/sin.
    cx, cy = direction_tables(16)
    table_error = float(
        np.abs(cx / 16.0 - np.cos(theta)).max()
        + np.abs(cy / 16.0 - np.sin(theta)).max()
    )

    print()
    print("Table 1 reproduction: conventional vs TrueNorth computation")
    print(
        format_table(
            ["operation", "metric", "value"],
            [
                ["gradient vector (pattern matching)", "exact reconstruction",
                 str(gradient_exact)],
                ["gradient angle (comparison)", "bin agreement",
                 format_sig(angle_agreement)],
                ["gradient magnitude (inner product)", "correlation",
                 format_sig(magnitude_correlation)],
                ["gradient magnitude (inner product)", "worst ratio to true",
                 format_sig(worst_ratio)],
                ["direction tables Q=16", "max abs error", format_sig(table_error)],
            ],
        )
    )

    assert gradient_exact
    assert angle_agreement > 0.99
    assert magnitude_correlation > 0.999
    assert worst_ratio > np.cos(np.radians(10)) - 0.01  # bin-center bound


@pytest.mark.parametrize("quantized", [False, True], ids=["fp", "quantized"])
def test_bench_napprox_cell_grid(benchmark, quantized):
    """Throughput of the NApprox software model on a 64x128 window."""
    descriptor = NApproxDescriptor(NApproxConfig(quantized=quantized))
    image = np.random.default_rng(0).random((128, 64))
    grid = benchmark(descriptor.cell_grid, image)
    assert grid.shape == (16, 8, 18)
