"""Explore the Table 2 deployment power model beyond the paper's points.

Sweeps frame rate and module implementations, answering questions such
as: what does 60 fps full HD cost? how much does this repo's 22-core
NApprox corelet (vs the paper's 26) save? where is the FPGA/TrueNorth
break-even?

Run:  python examples/power_exploration.py
"""

from repro.analysis import format_sig, format_table
from repro.experiments import table2
from repro.power import (
    FPGA_SYSTEM_WATTS,
    napprox_estimate,
    parrot_estimate,
)


def main() -> None:
    # The paper's Table 2, with measured corelet size annotated.
    print(table2.format_report(table2.run(measure_corelet=True)))

    # Frame-rate sweep for the parrot 1-spike design.
    print("\nFrame-rate sweep (Parrot, 1-spike):")
    rows = []
    for fps in (13, 26, 60, 120):
        estimate = parrot_estimate(window=1, frames_per_second=fps)
        rows.append(
            [f"{fps} fps", str(estimate.total_cores), str(estimate.chips),
             f"{estimate.power_watts * 1000:.0f} mW"]
        )
    print(format_table(["target", "cores", "chips", "power"], rows))

    # Paper-vs-measured NApprox module size.
    print("\nNApprox module size sensitivity (full-HD @ 26 fps):")
    rows = []
    for cores, label in ((26, "paper's module"), (22, "this repo's corelet")):
        estimate = napprox_estimate(cores_per_module=cores)
        rows.append(
            [label, str(cores), str(estimate.chips),
             format_sig(estimate.power_watts) + " W"]
        )
    print(format_table(["implementation", "cores/module", "chips", "power"], rows))

    # Where does the parrot beat the FPGA *system* power?
    print("\nFPGA system power is "
          f"{FPGA_SYSTEM_WATTS} W; parrot beats it at every precision:")
    for spikes in (32, 4, 1):
        estimate = parrot_estimate(window=spikes)
        print(f"  {spikes:>2}-spike parrot: {estimate.power_watts:.3f} W "
              f"({FPGA_SYSTEM_WATTS / estimate.power_watts:.1f}x less)")


if __name__ == "__main__":
    main()
