"""Train a Parrot HoG extractor and explore its precision/power trade-off.

Reproduces the Section 3.2 flow: generate the randomly labelled training
data of Figure 3, train the 2-layer Eedn network to mimic HoG histogram
confidences, then evaluate its fidelity at stochastic-coding precisions
from analog down to 1 spike (Figure 6) together with the throughput and
deployment power each precision buys (Table 2).

Run:  python examples/parrot_training.py
"""

from repro.analysis import format_sig, format_table
from repro.parrot import ParrotExtractor, parrot_fidelity, train_parrot
from repro.power import module_throughput_cells_per_second, parrot_estimate


def main() -> None:
    print("training the parrot network on generated labelled data ...")
    network, dataset, diagnostics = train_parrot(rng=0)
    print(f"  {len(dataset)} samples, final loss {diagnostics['final_loss']:.3f}, "
          f"dominant angle within one bin: "
          f"{diagnostics['angle_within_one_bin']:.2f}")

    extractor = ParrotExtractor(network)
    print(f"  resource footprint: {extractor.cores_per_cell()} cores/cell "
          f"(paper: 8), {extractor.cores_per_window()} cores per 64x128 window "
          "(paper: 1024)")

    print("\nsweeping the input representation (Figure 6 / Table 2):")
    rows = []
    analog = parrot_fidelity(extractor, n_cells=250, rng=99)
    rows.append(["analog", format_sig(analog.correlation),
                 format_sig(analog.dominant_bin_agreement), "-", "-"])
    for spikes in (32, 16, 8, 4, 2, 1):
        report = parrot_fidelity(extractor.with_spikes(spikes), n_cells=250, rng=99)
        estimate = parrot_estimate(window=spikes)
        rows.append(
            [
                f"{spikes}-spike",
                format_sig(report.correlation),
                format_sig(report.dominant_bin_agreement),
                f"{module_throughput_cells_per_second(spikes)} cells/s",
                f"{estimate.power_watts * 1000:.0f} mW",
            ]
        )
    print(
        format_table(
            ["representation", "histogram corr", "dominant-bin agree",
             "throughput/module", "full-HD@26fps power"],
            rows,
        )
    )
    print("\npaper anchors: 6.15 W at 32 spikes, 768 mW at 4, 192 mW at 1.")


if __name__ == "__main__":
    main()
