"""Pedestrian detection end to end: the paper's case-study pipeline.

Trains a linear SVM with hard-negative mining on NApprox(fp) HoG
features over the synthetic INRIA-like dataset, then detects pedestrians
in annotated test scenes and reports the miss-rate/FPPI trade-off
(Figure 4 methodology).

Run:  python examples/pedestrian_detection.py
"""


from repro.analysis import format_sig, format_table
from repro.experiments.setup import (
    detection_curve,
    make_experiment_data,
    train_svm_detector,
)
from repro.napprox import NApproxConfig, NApproxDescriptor


def main() -> None:
    print("generating synthetic INRIA-like data ...")
    data = make_experiment_data(
        n_positive=100,
        n_negative=200,
        n_negative_images=5,
        n_test_scenes=12,
        rng=7,
    )

    extractor = NApproxDescriptor(NApproxConfig(quantized=False, normalization="l2"))
    print("training SVM with hard-negative mining ...")
    detector, miner = train_svm_detector(extractor, data, mining_rounds=1, rng=0)
    print(f"  mined hard negatives per round: {miner.report.mined_per_round}")
    print(f"  final training set: {miner.report.final_training_size} windows")

    print("running the detector over the test scenes ...")
    curve = detection_curve(detector, data)
    print()
    print(
        format_table(
            ["FPPI", "miss rate"],
            [
                [format_sig(f), format_sig(curve.miss_rate_at(f))]
                for f in (0.01, 0.1, 0.3, 1.0)
            ],
        )
    )
    print(f"\nlog-average miss rate: {curve.log_average_miss_rate():.3f}")

    # Show the detections in one scene.
    scene = data.test_scenes[0]
    detections = detector.detect(scene.image)
    print(f"\nscene 0: {len(scene.annotations)} persons annotated, "
          f"{len(detections)} detections:")
    for detection in detections[:5]:
        print(
            f"  box x={detection.x:.0f} y={detection.y:.0f} "
            f"w={detection.width:.0f} h={detection.height:.0f} "
            f"score={detection.score:.2f}"
        )


if __name__ == "__main__":
    main()
