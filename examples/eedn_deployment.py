"""Deploy a trained Eedn network onto the TrueNorth simulator.

Demonstrates the Eedn -> neurosynaptic-core path end to end: train a
small trinary-weight classifier, estimate its core footprint under the
standard mapping rules, build it as real cores, and verify that the
hardware spike counts agree with the vectorised spiking evaluator.

Run:  python examples/eedn_deployment.py
"""

import numpy as np

from repro.coding import StochasticEncoder
from repro.eedn import (
    EednNetwork,
    SpikingEvaluator,
    ThresholdActivation,
    TrainConfig,
    TrinaryDense,
    core_count,
    deploy_dense_network,
    train_network,
)
from repro.truenorth import Simulator


def main() -> None:
    # A small oriented-pattern classifier (4 coarse orientations).
    rng = np.random.default_rng(0)
    ys, xs = np.mgrid[0:8, 0:8] / 7.0
    inputs, labels = [], []
    for _ in range(1500):
        k = int(rng.integers(0, 4))
        theta = np.radians(k * 45 + 22.5)
        ramp = np.cos(theta) * xs - np.sin(theta) * ys
        image = (ramp > np.median(ramp) + rng.uniform(-0.1, 0.1)).astype(float)
        inputs.append(np.clip(image + rng.normal(0, 0.05, (8, 8)), 0, 1).ravel())
        labels.append(k)
    x = np.stack(inputs)
    y = np.array(labels)

    network = EednNetwork(
        [
            TrinaryDense(64, 128, rng=1),
            ThresholdActivation(0.0, ste_window=2.0),
            TrinaryDense(128, 4, rng=2),
        ]
    )
    print("training a 64 -> 128 -> 4 trinary Eedn classifier ...")
    result = train_network(
        network, x, y, TrainConfig(epochs=20, learning_rate=0.02), rng=3
    )
    print(f"  training accuracy: {result.train_accuracy[-1]:.3f}")

    cores, breakdown = core_count(network, (64,))
    print(f"\nmapping estimate: {cores} cores")
    for layer in breakdown:
        print(f"  layer {layer.layer_index}: {layer.description} -> "
              f"{layer.compute_cores} compute + {layer.splitter_cores} splitter")

    print("\nbuilding the network as neurosynaptic cores ...")
    deployed = deploy_dense_network(network)
    print(f"  built {deployed.core_count} cores, {deployed.stages} stages")

    # Drive both the hardware and the reference with the same spike train.
    # Each dense stage deploys as a splitter + sum core pair; the first
    # splitter sees injected spikes the same tick, and every subsequent
    # core hop adds one tick, so the latency is 2 * stages - 1 ticks.
    ticks = 32
    latency = 2 * deployed.stages - 1
    sample = x[0]
    raster = StochasticEncoder(ticks).encode(sample, rng=4)
    padded = np.vstack([raster, np.zeros((latency, 64), dtype=bool)])
    simulation = Simulator(deployed.system, rng=5).run(
        ticks + latency, {"in": padded}
    )
    window = simulation.probe_spikes["out"][latency : latency + ticks]
    hardware_counts = window.sum(axis=0)

    evaluator = SpikingEvaluator(network, ticks=ticks, rng=6, output_mode="hard")
    reference_counts = np.zeros(4, dtype=int)
    for tick in range(ticks):
        activity = raster[tick].astype(float)
        for weights, cutoff in evaluator._stages:
            activity = ((activity @ weights) >= cutoff).astype(float)
        reference_counts += activity.astype(int)

    print(f"\nsample label: {y[0]}")
    print(f"hardware spike counts:  {hardware_counts.tolist()}")
    print(f"reference spike counts: {reference_counts.tolist()}")
    print(f"hardware prediction:    {int(np.argmax(hardware_counts))}")
    match = "yes" if np.array_equal(hardware_counts, reference_counts) else "no"
    print(f"tick-exact agreement:   {match}")


if __name__ == "__main__":
    main()
