"""Quickstart: HoG feature extraction on simulated neuromorphic hardware.

Builds the NApprox HoG cell module (Table 1 of the paper) out of
neurosynaptic cores, runs one 10x10 pixel patch through the tick-level
TrueNorth simulator, and compares the spiking histogram against the
quantised software model and the conventional floating-point HoG.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table
from repro.napprox import NApproxCellRunner, NApproxConfig, NApproxDescriptor
from repro.napprox.validation import random_cell_patch


def main() -> None:
    rng = np.random.default_rng(7)
    patch = random_cell_patch(rng)  # a 10x10 oriented-ramp test cell

    # 1. The corelet implementation: 22 neurosynaptic cores, rate-coded
    # 64-spike inputs, histogram read out as spike counts.
    runner = NApproxCellRunner(window=64, rng=0)
    print(f"NApprox cell module: {runner.core_count} cores "
          f"(paper reports 26), {runner.ticks_per_cell} ticks/cell "
          f"=> {1000 // runner.ticks_per_cell} cells/s pipelined")
    hardware = runner.extract(patch)

    # 2. The equivalent software model at the same quantisation width.
    software = NApproxDescriptor(NApproxConfig(quantized=True, window=64))
    model = software.cell_histogram(patch)

    # 3. The full-precision NApprox(fp) reference.
    reference = NApproxDescriptor(NApproxConfig(quantized=False))
    exact = reference.cell_histogram(patch)

    rows = [
        [f"{bin_index * 20 + 10} deg", f"{hardware[bin_index]:.0f}",
         f"{model[bin_index]:.0f}", f"{exact[bin_index]:.0f}"]
        for bin_index in range(18)
    ]
    print()
    print(format_table(["orientation", "simulated HW", "software model", "fp"], rows))

    correlation = np.corrcoef(hardware, model)[0, 1]
    print()
    print(f"hardware-vs-software correlation on this cell: {correlation:.4f} "
          "(paper: >0.995 over 1000 cells)")


if __name__ == "__main__":
    main()
